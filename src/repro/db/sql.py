"""A SQL front end for MiniDB.

Supports the slice of SQL the paper's workloads need::

    SELECT l_orderkey, l_shipdate, l_linenumber
    FROM lineitem
    WHERE l_shipdate = '1995-01-17'

    SELECT l_returnflag, SUM(l_extendedprice * (1 - l_discount)) AS revenue
    FROM lineitem JOIN part ON l_partkey = p_partkey
    WHERE l_shipdate BETWEEN '1995-09-01' AND '1995-09-30'
      AND p_type LIKE 'PROMO%'
    GROUP BY l_returnflag
    ORDER BY revenue DESC
    LIMIT 10

Grammar: SELECT (expr [AS name] | AGG(expr) | COUNT(*)) , ... FROM table
[JOIN table ON col = col]* [WHERE expr] [GROUP BY cols] [HAVING expr]
[ORDER BY expr-name [ASC|DESC], ...] [LIMIT n].

The compiler pushes single-table WHERE conjuncts down into the table scans
— which is exactly where the Biscuit engine's NDP planner picks them up —
and routes cross-table equality conjuncts into the join graph.  String
literals compared against ``date`` columns are converted with the
'YYYY-MM-DD' calendar, so the paper's Fig. 8 queries paste straight in.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.db.catalog import date_to_int
from repro.db.executor import Engine, Rel, TableRef
from repro.db.expr import (
    Arith,
    Between,
    Cmp,
    Col,
    Const,
    Expr,
    InList,
    Like,
    Logic,
    Not,
    and_,
    columns_of,
)

__all__ = ["SqlError", "parse", "compile_sql", "CompiledQuery",
           "run_sql", "sql_query", "explain_sql", "run_explain", "to_sql"]

_DATE_RE = re.compile(r"^\d{4}-\d{2}-\d{2}$")

_TOKEN_RE = re.compile(r"""
    \s*(?:
        (?P<number>(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?)
      | (?P<string>'(?:[^']|'')*')
      | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
      | (?P<op><=|>=|<>|!=|[=<>(),.*/+-])
    )
""", re.VERBOSE)

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
    "AND", "OR", "NOT", "IN", "BETWEEN", "LIKE", "AS", "JOIN", "ON", "ASC",
    "DESC", "SUM", "COUNT", "AVG", "MIN", "MAX", "DISTINCT",
}
AGG_FUNCS = {"SUM": "sum", "COUNT": "count", "AVG": "avg", "MIN": "min", "MAX": "max"}


class SqlError(Exception):
    """Syntax or binding error in a SQL statement."""


@dataclass
class Token:
    kind: str  # number | string | name | keyword | op | end
    text: str


def _lex(text: str) -> List[Token]:
    tokens: List[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if not match or match.end() == position:
            rest = text[position:].strip()
            if not rest:
                break
            raise SqlError("cannot tokenize near %r" % rest[:20])
        position = match.end()
        if match.lastgroup == "name":
            word = match.group("name")
            if word.upper() in KEYWORDS:
                tokens.append(Token("keyword", word.upper()))
            else:
                tokens.append(Token("name", word))
        elif match.lastgroup == "number":
            tokens.append(Token("number", match.group("number")))
        elif match.lastgroup == "string":
            raw = match.group("string")[1:-1].replace("''", "'")
            tokens.append(Token("string", raw))
        else:
            tokens.append(Token("op", match.group("op")))
    tokens.append(Token("end", ""))
    return tokens


# ----------------------------------------------------------------- AST bits
@dataclass
class SelectItem:
    expr: Optional[Expr]  # None for COUNT(*) / aggregate-wrapped items
    name: str
    agg: Optional[str] = None  # sum/count/avg/min/max
    agg_arg: Optional[Expr] = None
    distinct: bool = False


@dataclass
class Query:
    items: List[SelectItem]
    tables: List[str]
    join_conditions: List[Tuple[str, str]]
    where: Optional[Expr]
    group_by: List[str]
    having: Optional[Expr]
    order_by: List[Tuple[str, bool]]  # (output name, descending)
    limit: Optional[int]


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.position = 0

    # ------------------------------------------------------------ utilities
    def peek(self) -> Token:
        return self.tokens[self.position]

    def next(self) -> Token:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.next()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.accept(kind, text)
        if token is None:
            raise SqlError(
                "expected %s near %r" % (text or kind, self.peek().text)
            )
        return token

    # -------------------------------------------------------------- grammar
    def parse_query(self) -> Query:
        self.expect("keyword", "SELECT")
        items = [self.parse_select_item()]
        while self.accept("op", ","):
            items.append(self.parse_select_item())
        self.expect("keyword", "FROM")
        tables = [self.expect("name").text]
        join_conditions: List[Tuple[str, str]] = []
        while self.accept("keyword", "JOIN"):
            tables.append(self.expect("name").text)
            self.expect("keyword", "ON")
            left = self.expect("name").text
            self.expect("op", "=")
            right = self.expect("name").text
            join_conditions.append((left, right))
        where = None
        if self.accept("keyword", "WHERE"):
            where = self.parse_or()
        group_by: List[str] = []
        if self.accept("keyword", "GROUP"):
            self.expect("keyword", "BY")
            group_by.append(self.expect("name").text)
            while self.accept("op", ","):
                group_by.append(self.expect("name").text)
        having = None
        if self.accept("keyword", "HAVING"):
            having = self.parse_or()
        order_by: List[Tuple[str, bool]] = []
        if self.accept("keyword", "ORDER"):
            self.expect("keyword", "BY")
            order_by.append(self.parse_order_item())
            while self.accept("op", ","):
                order_by.append(self.parse_order_item())
        limit = None
        if self.accept("keyword", "LIMIT"):
            limit = int(self.expect("number").text)
        self.expect("end")
        return Query(items, tables, join_conditions, where, group_by,
                     having, order_by, limit)

    def parse_order_item(self) -> Tuple[str, bool]:
        name = self.expect("name").text
        descending = False
        if self.accept("keyword", "DESC"):
            descending = True
        else:
            self.accept("keyword", "ASC")
        return name, descending

    def parse_select_item(self) -> SelectItem:
        token = self.peek()
        if token.kind == "keyword" and token.text in AGG_FUNCS:
            func = self.next().text
            self.expect("op", "(")
            distinct = bool(self.accept("keyword", "DISTINCT"))
            if func == "COUNT" and self.accept("op", "*"):
                argument = None
            else:
                argument = self.parse_additive()
            self.expect("op", ")")
            name = self.parse_alias() or func.lower()
            return SelectItem(None, name, agg=AGG_FUNCS[func],
                              agg_arg=argument, distinct=distinct)
        expr = self.parse_additive()
        name = self.parse_alias()
        if name is None:
            if isinstance(expr, Col):
                name = expr.name
            else:
                raise SqlError("computed select items need AS <name>")
        return SelectItem(expr, name)

    def parse_alias(self) -> Optional[str]:
        if self.accept("keyword", "AS"):
            return self.expect("name").text
        return None

    # ---------------------------------------------------- boolean expression
    def parse_or(self) -> Expr:
        left = self.parse_and()
        parts = [left]
        while self.accept("keyword", "OR"):
            parts.append(self.parse_and())
        if len(parts) == 1:
            return left
        return Logic("or", tuple(parts))

    def parse_and(self) -> Expr:
        parts = [self.parse_not()]
        while self.accept("keyword", "AND"):
            parts.append(self.parse_not())
        if len(parts) == 1:
            return parts[0]
        return and_(*parts)

    def parse_not(self) -> Expr:
        if self.accept("keyword", "NOT"):
            return Not(self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self) -> Expr:
        if self.accept("op", "("):
            inner = self.parse_or()
            self.expect("op", ")")
            return inner
        left = self.parse_additive()
        token = self.peek()
        if token.kind == "op" and token.text in ("=", "<>", "!=", "<", "<=", ">", ">="):
            op = self.next().text
            right = self.parse_additive()
            mapping = {"=": "==", "<>": "!=", "!=": "!="}
            return Cmp(mapping.get(op, op), left, right)
        if token.kind == "keyword" and token.text == "BETWEEN":
            self.next()
            low = self.parse_additive()
            self.expect("keyword", "AND")
            high = self.parse_additive()
            # SQL BETWEEN is inclusive on both ends.
            return and_(Cmp(">=", left, low), Cmp("<=", left, high))
        if token.kind == "keyword" and token.text == "IN":
            self.next()
            self.expect("op", "(")
            values = [self.parse_literal()]
            while self.accept("op", ","):
                values.append(self.parse_literal())
            self.expect("op", ")")
            return InList(left, tuple(value.value for value in values))
        if token.kind == "keyword" and token.text == "LIKE":
            self.next()
            pattern = self.expect("string").text
            return Like(left, pattern)
        raise SqlError("expected a predicate near %r" % token.text)

    # ------------------------------------------------------ value expression
    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while True:
            if self.accept("op", "+"):
                left = Arith("+", left, self.parse_multiplicative())
            elif self.accept("op", "-"):
                left = Arith("-", left, self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_primary()
        while True:
            if self.accept("op", "*"):
                left = Arith("*", left, self.parse_primary())
            elif self.accept("op", "/"):
                left = Arith("/", left, self.parse_primary())
            else:
                return left

    def parse_primary(self) -> Expr:
        if self.accept("op", "-"):
            inner = self.parse_primary()
            if isinstance(inner, Const):
                return Const(-inner.value)
            return Arith("-", Const(0), inner)
        if self.accept("op", "("):
            inner = self.parse_additive()
            self.expect("op", ")")
            return inner
        token = self.peek()
        if token.kind in ("number", "string"):
            return self.parse_literal()
        if token.kind == "name":
            return Col(self.next().text)
        raise SqlError("expected a value near %r" % token.text)

    def parse_literal(self) -> Const:
        token = self.next()
        if token.kind == "number":
            is_float = any(ch in token.text for ch in ".eE")
            value = float(token.text) if is_float else int(token.text)
            return Const(value)
        if token.kind == "string":
            return Const(token.text)
        raise SqlError("expected a literal near %r" % token.text)


def parse(text: str) -> Query:
    """Parse a SELECT statement into a :class:`Query`."""
    return _Parser(_lex(text)).parse_query()


# ------------------------------------------------------------------ binding
def _bind_dates(expr: Expr, column_type) -> Expr:
    """Convert 'YYYY-MM-DD' string literals compared to date columns."""
    def convert(node: Expr, expected_date: bool) -> Expr:
        if isinstance(node, Const):
            if (expected_date and isinstance(node.value, str)
                    and _DATE_RE.match(node.value)):
                return Const(date_to_int(node.value))
            return node
        if isinstance(node, Cmp):
            left_date = _is_date_col(node.left, column_type)
            right_date = _is_date_col(node.right, column_type)
            return Cmp(node.op, convert(node.left, right_date),
                       convert(node.right, left_date))
        if isinstance(node, Logic):
            return Logic(node.op, tuple(convert(a, False) for a in node.args))
        if isinstance(node, Not):
            return Not(convert(node.arg, False))
        if isinstance(node, Between):
            is_date = _is_date_col(node.column, column_type)
            return Between(convert(node.column, False),
                           convert(node.low, is_date), convert(node.high, is_date))
        if isinstance(node, InList):
            if _is_date_col(node.column, column_type):
                return InList(node.column, tuple(
                    date_to_int(v) if isinstance(v, str) and _DATE_RE.match(v) else v
                    for v in node.values
                ))
            return node
        if isinstance(node, Arith):
            return Arith(node.op, convert(node.left, False), convert(node.right, False))
        return node

    return convert(expr, False)


def _is_date_col(node: Expr, column_type) -> bool:
    return isinstance(node, Col) and column_type(node.name) == "date"


# ---------------------------------------------------------------- compiling
@dataclass
class CompiledQuery:
    """The bound, pushdown-split form of a statement (input to execution
    and to EXPLAIN)."""

    query: Query
    refs: List[TableRef]
    join_conditions: List[Tuple[str, str]]
    leftovers: List[Expr]
    having: Optional[Expr]


def compile_sql(engine: Engine, text: str) -> CompiledQuery:
    """Parse, bind and split a statement against ``engine``'s catalog.

    Single-table WHERE conjuncts are pushed into the scans (feeding the NDP
    planner under the Biscuit engine); cross-table equality conjuncts join
    the join graph; the rest filter after the joins.
    """
    query = parse(text)
    db = engine.db
    for table in query.tables:
        if table not in db.tables:
            raise SqlError("unknown table %r" % table)
    column_owner: Dict[str, str] = {}
    column_type: Dict[str, str] = {}
    for table in query.tables:
        schema = db.table(table).schema
        for column in schema.column_names():
            if column in column_owner:
                raise SqlError("ambiguous column %r" % column)
            column_owner[column] = table
            column_type[column] = schema.column_type(column)

    def type_of(name: str) -> str:
        return column_type.get(name, "")

    where = _bind_dates(query.where, type_of) if query.where is not None else None
    having = _bind_dates(query.having, type_of) if query.having is not None else None

    # Split WHERE into per-table pushdowns, join conditions, and leftovers.
    table_preds: Dict[str, List[Expr]] = {t: [] for t in query.tables}
    join_conditions = list(query.join_conditions)
    leftovers: List[Expr] = []
    conjuncts: List[Expr] = []
    if where is not None:
        conjuncts = list(where.args) if (
            isinstance(where, Logic) and where.op == "and") else [where]
    for conjunct in conjuncts:
        used = columns_of(conjunct)
        unknown = [c for c in used if c not in column_owner]
        if unknown:
            raise SqlError("unknown column %r" % unknown[0])
        owners = {column_owner[c] for c in used}
        if len(owners) == 1:
            table_preds[owners.pop()].append(conjunct)
        elif (isinstance(conjunct, Cmp) and conjunct.op == "=="
                and isinstance(conjunct.left, Col) and isinstance(conjunct.right, Col)):
            join_conditions.append((conjunct.left.name, conjunct.right.name))
        else:
            leftovers.append(conjunct)

    # Columns each scan must produce: everything referenced anywhere.
    needed: Dict[str, set] = {t: set() for t in query.tables}
    def need(expr: Optional[Expr]):
        if expr is None:
            return
        for column in columns_of(expr):
            needed[column_owner[column]].add(column)
    for item in query.items:
        need(item.expr)
        need(item.agg_arg)
    for conjunct in leftovers:
        need(conjunct)
    # HAVING references *output* columns (aggregate names / group keys), so
    # it binds against the aggregated relation, not the base tables.
    for a, b in join_conditions:
        for column in (a, b):
            if column in column_owner:
                needed[column_owner[column]].add(column)
    for column in query.group_by:
        if column in column_owner:
            needed[column_owner[column]].add(column)

    refs = []
    for table in query.tables:
        pred = and_(*table_preds[table]) if table_preds[table] else None
        schema_cols = db.table(table).schema.column_names()
        cols = [c for c in schema_cols if c in needed[table]] or schema_cols[:1]
        refs.append(TableRef(table, pred, cols))
    return CompiledQuery(query, refs, join_conditions, leftovers, having)


def sql_query(engine: Engine, text: str) -> Generator:
    """Fiber: compile and execute a SQL statement on ``engine``."""
    compiled = compile_sql(engine, text)
    query = compiled.query
    refs = compiled.refs
    join_conditions = compiled.join_conditions
    leftovers = compiled.leftovers
    having = compiled.having

    aggregated = any(item.agg for item in query.items)
    aggs = []
    if aggregated or query.group_by:
        for item in query.items:
            if item.agg:
                kind = item.agg
                if item.distinct:
                    if kind != "count":
                        raise SqlError("DISTINCT only supported inside COUNT()")
                    kind = "count_distinct"
                aggs.append((item.name, kind, item.agg_arg))
            elif not (isinstance(item.expr, Col) and item.expr.name in query.group_by):
                raise SqlError(
                    "non-aggregated select item %r must appear in GROUP BY" % item.name
                )

    # Extension: push the whole scan+filter+aggregate into the SSD when the
    # statement is a single-table aggregation over an offloadable filter.
    rel = None
    if (aggregated and len(refs) == 1 and not leftovers
            and refs[0].pred is not None
            and engine.ndp_context is not None
            and engine.config.ndp_pushdown_aggregate):
        from repro.db.ndp import ndp_aggregate_supported

        if ndp_aggregate_supported(aggs):
            decision = yield from engine.planner.decide(refs[0])
            if decision.offload:
                rel = yield from engine.ndp_context.ndp_aggregate(
                    engine, refs[0], decision, list(query.group_by), aggs
                )

    if rel is None:
        # Access path: single table scan or a multi-join.
        if len(refs) == 1:
            rel = yield from engine.fetch(refs[0])
        else:
            rel = yield from engine.multi_join(refs, join_conditions)
        for conjunct in leftovers:
            rel = yield from engine.filter(rel, conjunct)
        if aggregated or query.group_by:
            rel = yield from engine.aggregate(rel, list(query.group_by), aggs)

    if aggregated or query.group_by:
        # Reorder to the SELECT list (grouped columns keep their names).
        out_names = [item.name for item in query.items]
        idx = [rel.position(name) for name in out_names]
        rel = Rel(out_names, [tuple(row[i] for i in idx) for row in rel.rows])
    else:
        exprs = [(item.name, item.expr) for item in query.items]
        rel = yield from engine.project(rel, exprs)

    if having is not None:
        rel = yield from engine.filter(rel, having)
    if query.order_by:
        for name, _ in query.order_by:
            if name not in rel.positions:
                raise SqlError("ORDER BY %r is not an output column" % name)
        rel = yield from engine.sort(rel, list(query.order_by), limit=query.limit)
    elif query.limit is not None:
        rel = Rel(rel.columns, rel.rows[:query.limit])
    return rel


def run_sql(engine: Engine, text: str, cold: bool = True):
    """Run a SQL statement to completion; returns (Rel, elapsed seconds)."""
    engine.begin_query(cold=cold)
    system = engine.system
    start = system.sim.now_s
    trace = system.sim.trace
    if trace is not None:
        with trace.scope("db/q%d" % engine.query_seq):
            rel = system.run_fiber(sql_query(engine, text), name="sql")
    else:
        rel = system.run_fiber(sql_query(engine, text), name="sql")
    return rel, system.sim.now_s - start


# ------------------------------------------------------------------ explain
def explain_sql(engine: Engine, text: str) -> Generator:
    """Fiber: render the plan for a statement (runs the planner, not the
    query).

    Shows the access path per table (including the Biscuit planner's offload
    decision with its sampled selectivity and reason), the join order the
    engine would use, and the post-join steps.
    """
    from repro.db.executor import ExecutionMode

    compiled = compile_sql(engine, text)
    query = compiled.query
    lines: List[str] = ["%s plan (%s engine)" % (
        "SELECT", engine.mode.value,
    )]
    order = yield from engine._join_order(compiled.refs)
    for position, ref in enumerate(order):
        access = "SeqScan"
        detail = ""
        if ref.pred is not None:
            detail = " [pushed filter]"
            if engine.mode is ExecutionMode.BISCUIT:
                decision = yield from engine.planner.peek(ref)
                if decision.offload:
                    access = "NDPScan"
                    detail = " [%s]" % decision.reason
                else:
                    detail = " [pushed filter; no offload: %s]" % decision.reason
        storage = engine.db.table(ref.name)
        role = "drive" if position == 0 and len(order) > 1 else "join"
        if position > 0:
            key = engine._find_key(
                Rel(_columns_up_to(engine, order, position), []),
                ref, list(compiled.join_conditions),
            )
            if key is not None and storage.has_index(key[1]):
                access = "IndexProbe(%s)" % key[1]
            elif position > 0 and access == "SeqScan":
                access = "SeqScan+HashJoin"
        lines.append("  %-5s %-22s %s%s" % (role, ref.name, access, detail))
    for conjunct in compiled.leftovers:
        lines.append("  filter (post-join) %s" % to_sql(conjunct))
    if query.group_by or any(item.agg for item in query.items):
        aggregates = ", ".join(
            "%s(%s)" % (item.agg, item.name) for item in query.items if item.agg
        )
        lines.append("  aggregate by [%s]: %s" % (", ".join(query.group_by), aggregates))
    if compiled.having is not None:
        lines.append("  having %s" % to_sql(compiled.having))
    if query.order_by:
        lines.append("  order by %s%s" % (
            ", ".join("%s %s" % (name, "DESC" if desc else "ASC")
                      for name, desc in query.order_by),
            " limit %d" % query.limit if query.limit is not None else "",
        ))
    elif query.limit is not None:
        lines.append("  limit %d" % query.limit)
    return "\n".join(lines)


def _columns_up_to(engine: Engine, order, position: int) -> List[str]:
    columns: List[str] = []
    for ref in order[:position]:
        columns.extend(
            ref.cols or engine.db.table(ref.name).schema.column_names()
        )
    return columns


def run_explain(engine: Engine, text: str) -> str:
    """Render a statement's plan (synchronous wrapper around explain_sql)."""
    engine.begin_query()
    return engine.system.run_fiber(explain_sql(engine, text), name="explain")


# ------------------------------------------------------------- SQL printing
def to_sql(expr: Expr) -> str:
    """Render an expression back to SQL text (EXPLAIN display, tests).

    Inverse of the parser for the supported grammar; date integers render
    as plain numbers (the textual calendar form is not recoverable without
    schema context).
    """
    if isinstance(expr, Col):
        return expr.name
    if isinstance(expr, Const):
        if isinstance(expr.value, str):
            return "'%s'" % expr.value.replace("'", "''")
        return repr(expr.value)
    if isinstance(expr, Cmp):
        op = {"==": "=", "!=": "<>"}.get(expr.op, expr.op)
        return "%s %s %s" % (to_sql(expr.left), op, to_sql(expr.right))
    if isinstance(expr, Logic):
        joiner = " AND " if expr.op == "and" else " OR "
        return "(" + joiner.join(to_sql(arg) for arg in expr.args) + ")"
    if isinstance(expr, Not):
        return "NOT (%s)" % to_sql(expr.arg)
    if isinstance(expr, Between):
        # Internal Between is half-open; render the equivalent comparison.
        return "(%s >= %s AND %s < %s)" % (
            to_sql(expr.column), to_sql(expr.low),
            to_sql(expr.column), to_sql(expr.high),
        )
    if isinstance(expr, InList):
        return "%s IN (%s)" % (
            to_sql(expr.column),
            ", ".join(to_sql(Const(value)) for value in expr.values),
        )
    if isinstance(expr, Like):
        keyword = "NOT LIKE" if expr.negated else "LIKE"
        return "%s %s '%s'" % (to_sql(expr.column), keyword,
                               expr.pattern.replace("'", "''"))
    if isinstance(expr, Arith):
        return "(%s %s %s)" % (to_sql(expr.left), expr.op, to_sql(expr.right))
    raise SqlError("cannot render %r as SQL" % (expr,))
