"""System power and energy accounting (Fig. 9, Table VI)."""

from repro.power.model import PowerMeter, PowerParams

__all__ = ["PowerMeter", "PowerParams"]
