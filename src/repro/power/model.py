"""Wall-power model over the simulated activity timeline.

The paper measures whole-system power with the SSD attached (Fig. 9):
idle ≈ 103 W; during Query 1 Conv averages 122 W (host CPUs busy, SSD
partially busy) and Biscuit averages 136 W (SSD channels saturated).

Model: instantaneous power = idle + (busy host cores × per-core watts)
+ (SSD channel-bus utilization × full-device NAND watts) + (device-core
utilization × device-core watts) + (PCIe utilization × link watts).  The
meter samples resource busy-integrals at a fixed simulated interval, so the
series is exact for the model (no sampling noise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

from repro.host.platform import System
from repro.sim.engine import Interrupt, Process
from repro.sim.units import s_to_ns

__all__ = ["PowerParams", "PowerMeter"]


@dataclass
class PowerParams:
    """Calibrated to Fig. 9 (idle 103 W; Conv 122 W; Biscuit 136 W)."""

    idle_w: float = 103.0
    host_core_w: float = 17.0  # per busy host core
    ssd_nand_w: float = 42.0  # all channels streaming
    device_core_w: float = 6.0  # per busy device core
    pcie_w: float = 3.0  # link at full utilization


class PowerMeter:
    """Samples system power on a fixed simulated-time grid."""

    def __init__(
        self,
        system: System,
        params: Optional[PowerParams] = None,
        interval_s: float = 0.25,
    ):
        self.system = system
        self.params = params or PowerParams()
        self.interval_ns = s_to_ns(interval_s)
        self.series: List[Tuple[float, float]] = []  # (time_s, watts)
        self._fiber: Optional[Process] = None
        self._last = self._snapshot()
        self._last_t = system.sim.now

    # ---------------------------------------------------------------- control
    def start(self) -> None:
        if self._fiber is not None:
            return
        self._last = self._snapshot()
        self._last_t = self.system.sim.now
        self._fiber = self.system.sim.process(self._sampler(), name="power-meter")
        self._fiber.defused = True

    def stop(self) -> None:
        if self._fiber is None:
            return
        if self._fiber.is_alive:
            self._take_sample()  # close the final partial interval
            self._fiber.interrupt("meter stop")
        self._fiber = None

    def _sampler(self) -> Generator:
        try:
            while True:
                yield self.system.sim.timeout(self.interval_ns)
                self._take_sample()
        except Interrupt:
            return

    # --------------------------------------------------------------- sampling
    def _snapshot(self) -> Tuple[int, int, int, int]:
        device = self.system.device
        nand_busy = sum(ch.bus.busy_area() for ch in device.nand.channels)
        return (
            self.system.cpu.cores.busy_area(),
            nand_busy,
            device.cores.busy_area(),
            device.interface.link.busy_area(),
        )

    def _take_sample(self) -> None:
        now = self.system.sim.now
        dt = now - self._last_t
        if dt <= 0:
            return
        current = self._snapshot()
        host_d, nand_d, core_d, pcie_d = (
            current[i] - self._last[i] for i in range(4)
        )
        params = self.params
        device = self.system.device
        watts = (
            params.idle_w
            + params.host_core_w * (host_d / dt)
            + params.ssd_nand_w * (nand_d / (dt * len(device.nand.channels)))
            + params.device_core_w * (core_d / dt)
            + params.pcie_w * (pcie_d / dt)
        )
        self.series.append((now / 1e9, watts))
        self._last = current
        self._last_t = now

    # ------------------------------------------------------------------ query
    def average_w(self, t0_s: float = 0.0, t1_s: Optional[float] = None) -> float:
        """Mean power over [t0, t1] (defaults to the whole recording)."""
        points = [
            (t, w) for t, w in self.series
            if t >= t0_s and (t1_s is None or t <= t1_s)
        ]
        if not points:
            return self.params.idle_w
        return sum(w for _, w in points) / len(points)

    def energy_kj(self, t0_s: float = 0.0, t1_s: Optional[float] = None) -> float:
        """Energy in kJ over [t0, t1]: Σ watts × interval."""
        total = 0.0
        prev_t = t0_s
        for t, w in self.series:
            if t < t0_s:
                prev_t = t
                continue
            if t1_s is not None and t > t1_s:
                break
            total += w * (t - prev_t)
            prev_t = t
        return total / 1e3
