"""Namespace, inodes and page allocation."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.ssd.device import SSDDevice

__all__ = ["FileSystem", "Inode", "FsError"]

PageContentFn = Callable[[int], bytes]


class FsError(Exception):
    """Filesystem-level failure (missing file, duplicate create, bad range)."""


class Inode:
    """One file: size, extents of logical pages, and an optional content model.

    ``content_fn`` (synthetic files) maps a *file-relative* page index to that
    page's bytes; ``analytic_profile`` optionally records per-key match
    probabilities so the pattern matcher can run in analytic mode against
    this file.
    """

    def __init__(
        self,
        path: str,
        page_size: int,
        content_fn: Optional[PageContentFn] = None,
        analytic_profile: Optional[Dict[bytes, float]] = None,
        synthetic: bool = False,
    ):
        self.path = path
        self.page_size = page_size
        self.size = 0
        self.extents: List[Tuple[int, int]] = []  # (start_lpn, page_count)
        self.content_fn = content_fn
        self.analytic_profile = analytic_profile or {}
        self._synthetic = synthetic

    @property
    def synthetic(self) -> bool:
        return (self._synthetic or self.content_fn is not None
                or bool(self.analytic_profile))

    @property
    def num_pages(self) -> int:
        return (self.size + self.page_size - 1) // self.page_size

    def lpn_of(self, file_page: int) -> int:
        """Logical page number backing file-relative page ``file_page``."""
        remaining = file_page
        for start, count in self.extents:
            if remaining < count:
                return start + remaining
            remaining -= count
        raise FsError("%s: page %d beyond EOF" % (self.path, file_page))

    def lpns(self, offset: int, length: int) -> List[int]:
        """Logical pages covering the byte range [offset, offset+length)."""
        if offset < 0 or length < 0:
            raise FsError("negative offset/length")
        if length == 0:
            return []
        if offset + length > self.size:
            raise FsError(
                "%s: range [%d, %d) beyond size %d"
                % (self.path, offset, offset + length, self.size)
            )
        first = offset // self.page_size
        last = (offset + length - 1) // self.page_size
        return [self.lpn_of(i) for i in range(first, last + 1)]

    def all_lpns(self) -> List[int]:
        return [start + i for start, count in self.extents for i in range(count)]


class FileSystem:
    """Flat-namespace filesystem over one :class:`SSDDevice`."""

    def __init__(self, device: SSDDevice):
        self.device = device
        self.page_size = device.config.logical_page_bytes
        self._files: Dict[str, Inode] = {}
        self._next_lpn = 0
        self._free: List[Tuple[int, int]] = []  # reclaimed extents

    # -------------------------------------------------------------- namespace
    def exists(self, path: str) -> bool:
        return path in self._files

    def listdir(self) -> List[str]:
        return sorted(self._files)

    def lookup(self, path: str) -> Inode:
        try:
            return self._files[path]
        except KeyError:
            raise FsError("no such file: %s" % path) from None

    def delete(self, path: str) -> None:
        inode = self.lookup(path)
        del self._files[path]
        lpns = inode.all_lpns()
        self.device.discard_pages(lpns)
        self._free.extend(inode.extents)

    # ------------------------------------------------------------- allocation
    def _allocate(self, pages: int) -> List[Tuple[int, int]]:
        extents: List[Tuple[int, int]] = []
        remaining = pages
        while remaining > 0 and self._free:
            start, count = self._free.pop()
            take = min(count, remaining)
            extents.append((start, take))
            if take < count:
                self._free.append((start + take, count - take))
            remaining -= take
        if remaining > 0:
            extents.append((self._next_lpn, remaining))
            self._next_lpn += remaining
        return extents

    # ---------------------------------------------------------------- create
    def install(self, path: str, data: bytes) -> Inode:
        """Create a file with real content, without simulated time.

        This is the dataset-bootstrap path (like preparing a testbed before
        the measured run).  Timed writes go through
        :meth:`repro.fs.file.FileHandle.write`.
        """
        if path in self._files:
            raise FsError("file exists: %s" % path)
        inode = Inode(path, self.page_size)
        inode.size = len(data)
        pages = inode.num_pages
        inode.extents = self._allocate(pages)
        lpns = inode.all_lpns()
        for i, lpn in enumerate(lpns):
            chunk = data[i * self.page_size:(i + 1) * self.page_size]
            self.device.store_page(lpn, chunk)
        self._files[path] = inode
        return inode

    def create_empty(self, path: str) -> Inode:
        """Create a zero-length file for subsequent timed writes."""
        if path in self._files:
            raise FsError("file exists: %s" % path)
        inode = Inode(path, self.page_size)
        self._files[path] = inode
        return inode

    def install_synthetic(
        self,
        path: str,
        size: int,
        content_fn: Optional[PageContentFn] = None,
        analytic_profile: Optional[Dict[bytes, float]] = None,
    ) -> Inode:
        """Create a paper-scale file whose pages are generated, not stored.

        ``content_fn(page_index) -> bytes`` materializes a page on demand
        (exact semantics at any scale); ``analytic_profile`` maps matcher keys
        to per-page match probabilities for analytic-mode matching.
        """
        if path in self._files:
            raise FsError("file exists: %s" % path)
        if size <= 0:
            raise FsError("synthetic file needs a positive size")
        inode = Inode(path, self.page_size, content_fn=content_fn,
                      analytic_profile=analytic_profile, synthetic=True)
        inode.size = size
        inode.extents = self._allocate(inode.num_pages)
        self._files[path] = inode
        return inode

    def grow(self, inode: Inode, new_size: int) -> None:
        """Extend a file's allocation to cover ``new_size`` bytes."""
        if new_size < inode.size:
            raise FsError("grow cannot shrink %s" % inode.path)
        needed = (new_size + self.page_size - 1) // self.page_size - inode.num_pages
        if needed > 0:
            inode.extents.extend(self._allocate(needed))
        inode.size = new_size

    # ----------------------------------------------------------------- content
    def page_content(self, inode: Inode, file_page: int) -> bytes:
        """Bytes of one file page (store-backed or generated)."""
        if inode.content_fn is not None:
            data = inode.content_fn(file_page)
            if len(data) > self.page_size:
                raise FsError("content_fn produced an oversized page")
            return data
        return self.device.load_page(inode.lpn_of(file_page))

    def read_range(self, inode: Inode, offset: int, length: int) -> bytes:
        """Assemble the bytes of [offset, offset+length) (no timing)."""
        if length == 0:
            return b""
        first = offset // self.page_size
        last = (offset + length - 1) // self.page_size
        parts = [self.page_content(inode, i) for i in range(first, last + 1)]
        blob = b"".join(
            part.ljust(self.page_size, b"\x00") for part in parts
        )
        start = offset - first * self.page_size
        return blob[start:start + length]
