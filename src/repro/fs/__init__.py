"""Extent-based filesystem over the SSD's logical pages.

Biscuit "prohibits SSDlets from directly using low-level, logical block
addresses and forces the SSD to operate under a file system" (Section III-D).
This package is that filesystem: a flat namespace of files, each a list of
logical-page extents, with exact-content files (real bytes in the device
store) and synthetic files (paper-scale datasets whose page content is a
deterministic function of the page index — see DESIGN.md, "analytic mode").
"""

from repro.fs.filesystem import FileSystem, FsError, Inode
from repro.fs.file import FileHandle

__all__ = ["FileSystem", "FileHandle", "Inode", "FsError"]
