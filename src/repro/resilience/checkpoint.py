"""Scan checkpoints: exactly-once row accounting across retries.

A resilient scan splits a table into per-worker page ranges.  Each worker
streams rows back in batches; at every checkpoint boundary it emits a
*marker* meaning "every surviving row for pages < ``end_page`` has been
emitted".  The host side **stages** incoming rows and **commits** them only
when the marker arrives, advancing the range's resume point.

If the worker dies mid-range (device fault, crash, interrupt), everything
staged since the last marker is discarded and the range resumes at the
committed page — rows are neither lost (uncommitted pages are re-scanned)
nor duplicated (committed pages are never re-scanned, and their staged rows
were promoted exactly once).

Hedged attempts run on a :meth:`ScanCheckpoint.clone`; the winning leg's
clone is adopted as the new shared state, so two legs never interleave
commits into one ledger.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

__all__ = ["RangeCheckpoint", "ScanCheckpoint"]


class RangeCheckpoint:
    """Commit ledger for one worker's page range [first_page, end_page)."""

    __slots__ = ("first_page", "end_page", "committed_page",
                 "rows", "_staged")

    def __init__(self, first_page: int, end_page: int):
        if end_page < first_page:
            raise ValueError("range ends before it starts")
        self.first_page = first_page
        self.end_page = end_page
        self.committed_page = first_page  # resume point
        self.rows: List[tuple] = []  # committed rows, in emit order
        self._staged: List[tuple] = []

    @property
    def done(self) -> bool:
        return self.committed_page >= self.end_page

    def stage(self, rows: List[tuple]) -> None:
        """Buffer rows that arrived but are not yet covered by a marker."""
        self._staged.extend(rows)

    def commit(self, end_page: int) -> None:
        """A marker arrived: promote staged rows, advance the resume point."""
        if end_page < self.committed_page or end_page > self.end_page:
            raise ValueError(
                "checkpoint marker %d outside [%d, %d]"
                % (end_page, self.committed_page, self.end_page))
        self.rows.extend(self._staged)
        self._staged = []
        self.committed_page = end_page

    def abort(self) -> int:
        """The attempt died: drop staged rows; returns how many were dropped."""
        dropped = len(self._staged)
        self._staged = []
        return dropped

    def clone(self) -> "RangeCheckpoint":
        other = RangeCheckpoint(self.first_page, self.end_page)
        other.committed_page = self.committed_page
        other.rows = list(self.rows)
        return other


class ScanCheckpoint:
    """All of one scan's range ledgers (one per worker share)."""

    def __init__(self, ranges: List[Tuple[int, int]]):
        self.ranges = [RangeCheckpoint(first, end) for first, end in ranges]
        self.commits = 0
        self.aborted_rows = 0

    @classmethod
    def for_pages(cls, num_pages: int, workers: int) -> "ScanCheckpoint":
        """Even page shares, mirroring the NDP scan's worker split."""
        workers = min(max(1, workers), max(1, num_pages))
        share = (num_pages + workers - 1) // workers
        ranges = []
        for index in range(workers):
            first = index * share
            if first >= num_pages:
                break
            ranges.append((first, min(first + share, num_pages)))
        return cls(ranges)

    @property
    def done(self) -> bool:
        return all(r.done for r in self.ranges)

    def pending(self) -> List[int]:
        """Indexes of ranges that still have pages to scan."""
        return [i for i, r in enumerate(self.ranges) if not r.done]

    def stage(self, index: int, rows: List[tuple]) -> None:
        self.ranges[index].stage(rows)

    def commit(self, index: int, end_page: int) -> None:
        self.ranges[index].commit(end_page)
        self.commits += 1

    def abort(self) -> None:
        """Drop every range's staged rows (the attempt failed)."""
        for r in self.ranges:
            self.aborted_rows += r.abort()

    def collect(self) -> List[tuple]:
        """Every committed row, range-major (deterministic order)."""
        rows: List[tuple] = []
        for r in self.ranges:
            rows.extend(r.rows)
        return rows

    def clone(self) -> "ScanCheckpoint":
        other = ScanCheckpoint.__new__(ScanCheckpoint)
        other.ranges = [r.clone() for r in self.ranges]
        other.commits = self.commits
        other.aborted_rows = self.aborted_rows
        return other

    def adopt(self, winner: "ScanCheckpoint") -> None:
        """Replace this ledger's state with a winning clone's."""
        self.ranges = winner.ranges
        self.commits = winner.commits
        self.aborted_rows = winner.aborted_rows
