"""Hedge policy: when to fire the backup request against a replica.

The hedge deadline is derived from observed primary latencies: once enough
samples exist, the deadline is the p99 (exact order statistic over a
bounded sliding window — deterministic, no interpolation) times a safety
multiplier, floored so a burst of fast requests cannot drive the deadline
to zero.  Before warmup, a configured default applies.

The policy also carries the hedging scoreboard (fired / wins / losses /
failovers) so benches and tests read one object.
"""

from __future__ import annotations

from typing import List

from repro.instrument.metrics import Counter, registry_counter

__all__ = ["HedgePolicy"]


class HedgePolicy:
    """p99-derived hedge deadline plus win/loss bookkeeping."""

    def __init__(
        self,
        quantile: float = 0.99,
        multiplier: float = 1.0,
        floor_us: float = 200.0,
        default_us: float = 5000.0,
        warmup: int = 8,
        window: int = 256,
    ):
        if not 0.0 < quantile <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        if multiplier <= 0:
            raise ValueError("multiplier must be positive")
        if warmup < 1:
            raise ValueError("warmup must be at least 1")
        self.quantile = quantile
        self.multiplier = multiplier
        self.floor_us = floor_us
        self.default_us = default_us
        self.warmup = warmup
        self.window = window
        self._samples: List[float] = []
        # Scoreboard: free-standing counters until bind_registry moves them
        # into a system MetricsRegistry (metrics sidecars).
        self._counters = {field: Counter("hedge.%s" % field)
                          for field in self._FIELDS}

    _FIELDS = ("hedges_fired", "hedge_wins", "primary_wins", "failovers")

    hedges_fired = registry_counter("hedges_fired")
    hedge_wins = registry_counter("hedge_wins")
    primary_wins = registry_counter("primary_wins")
    failovers = registry_counter("failovers")

    def bind_registry(self, registry, prefix: str = "resilience.hedge") -> None:
        """Re-home the scoreboard into ``registry`` (values carry over)."""
        for field in self._FIELDS:
            counter = registry.counter("%s.%s" % (prefix, field))
            counter.value = self._counters[field].value
            self._counters[field] = counter

    def observe(self, latency_us: float) -> None:
        """Record one completed primary-side latency."""
        self._samples.append(latency_us)
        if len(self._samples) > self.window:
            del self._samples[0]

    @property
    def samples(self) -> int:
        return len(self._samples)

    def deadline_us(self) -> float:
        """Wait this long before firing the hedge leg."""
        if len(self._samples) < self.warmup:
            return max(self.floor_us, self.default_us)
        ordered = sorted(self._samples)
        # Exact order statistic: smallest sample with rank >= q * n.
        rank = max(0, min(len(ordered) - 1,
                          int(self.quantile * len(ordered) + 0.999999) - 1))
        return max(self.floor_us, ordered[rank] * self.multiplier)

    def counters(self) -> dict:
        return {field: self._counters[field].value for field in self._FIELDS}
