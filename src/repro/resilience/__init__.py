"""Query resilience: checkpointed scans, hedged reads, replica failover.

The machinery that lets an in-flight NDP SQL query survive device faults:

* :mod:`repro.resilience.checkpoint` — chunk-granular scan checkpoints with
  an exactly-once commit protocol (stage on emit, commit on marker).
* :mod:`repro.resilience.hedge` — p99-derived hedge deadlines and the
  win/loss bookkeeping for hedged request legs.
* :mod:`repro.resilience.recovery` — per-device recovery windows consulted
  by the serving layer's load shedding.
* :mod:`repro.resilience.executor` — the resilient scan driver: retry with
  backoff, resume from checkpoints, hedge against a replica, fail over on
  whole-device crashes.
"""

from repro.resilience.checkpoint import RangeCheckpoint, ScanCheckpoint
from repro.resilience.executor import (
    ResilienceStats,
    ResilientScanDriver,
    RetryPolicy,
    ScanSpec,
)
from repro.resilience.hedge import HedgePolicy
from repro.resilience.recovery import RecoveryTracker

__all__ = [
    "HedgePolicy",
    "RangeCheckpoint",
    "RecoveryTracker",
    "ResilienceStats",
    "ResilientScanDriver",
    "RetryPolicy",
    "ScanCheckpoint",
    "ScanSpec",
]
