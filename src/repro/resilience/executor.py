"""The resilient scan driver: retry, resume, hedge, fail over.

One :class:`ResilientScanDriver` owns the recovery datapath for NDP scans
on a (possibly replicated) :class:`~repro.host.platform.System`:

* every attempt runs the checkpoint-marker protocol
  (:mod:`repro.resilience.checkpoint` + ``ScanFilter``'s tagged emission),
  so a failed attempt resumes from the last committed chunk instead of
  restarting the scan;
* a :class:`~repro.resilience.hedge.HedgePolicy` (optional) fires a backup
  attempt against the replica device when the primary outlives its
  p99-derived deadline, and the losing leg is *cancelled* — both legs, the
  interrupt fix in :meth:`repro.sim.engine.Process.interrupt` guarantees no
  doubly-granted channel/die is leaked;
* a whole-device crash (:class:`~repro.core.errors.DeviceCrashedError`)
  fails over: the SSDlet module is re-loaded on the replica (through the
  same graph-verified ``Application.start`` path) and the stream resumes
  from the checkpoints.

Every attempt re-draws its faults (injection is per read attempt), and
storm windows are finite, so a retry budget whose cumulative backoff
outlasts the storm converges to the fault-free answer — which is what the
differential suite asserts byte-for-byte.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional

from repro.core import Application, DeviceFile, Packet, SSD, SSDLetProxy
from repro.core.errors import DeviceCrashedError, DeviceError
from repro.core.module import write_module_image
from repro.db.ndp import MODULE_IMAGE_PATH, NDP_MODULE
from repro.instrument.metrics import MetricsRegistry, registry_counter
from repro.resilience.checkpoint import ScanCheckpoint
from repro.resilience.hedge import HedgePolicy
from repro.resilience.recovery import RecoveryTracker
from repro.sim.engine import any_of
from repro.sim.units import us_to_ns

__all__ = [
    "ResilienceStats",
    "ResilientScanDriver",
    "RetryPolicy",
    "ScanSpec",
]


@dataclass
class RetryPolicy:
    """How hard to fight for a scan before giving up."""

    retry_limit: int = 8  # failed attempts before the error propagates
    backoff_us: float = 500.0  # first retry delay
    retry_growth: float = 2.0  # exponential backoff multiplier per retry
    max_backoff_us: float = 25000.0
    checkpoint_pages: int = 4  # commit granularity (pages per marker)
    failover: bool = True  # alternate devices across retries

    def backoff_ns(self, attempt: int) -> int:
        delay_us = self.backoff_us * (self.retry_growth ** (attempt - 1))
        return us_to_ns(min(delay_us, self.max_backoff_us))


@dataclass
class ScanSpec:
    """One scan's inputs; the table must exist at ``path`` on every device."""

    path: str
    page_rows: Callable[[int], List[tuple]]
    prefilter: Callable[[tuple], bool]
    predicate: Callable[[tuple], bool]
    out_idx: List[int]
    page_size: int
    num_pages: int
    batch_rows: int = 512
    workers: int = 2
    use_matcher: bool = True


class ResilienceStats:
    """The recovery scoreboard one driver accumulates across scans.

    The counters live in a :class:`~repro.instrument.metrics.MetricsRegistry`
    under ``resilience.*`` (the system-wide one when the driver passes it),
    so metrics sidecars carry the recovery picture; the named attributes
    stay as delegating properties so call sites keep ``stats.retries += 1``.
    """

    _FIELDS = ("scans", "retries", "resumes", "failovers", "device_errors",
               "crashes_seen", "gave_up")

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 prefix: str = "resilience") -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.prefix = prefix
        self._counters = {
            field: self.registry.counter("%s.%s" % (prefix, field))
            for field in self._FIELDS
        }

    scans = registry_counter("scans")
    retries = registry_counter("retries")
    #: Attempts that started past a range's first page.
    resumes = registry_counter("resumes")
    #: Retries moved to a different device.
    failovers = registry_counter("failovers")
    device_errors = registry_counter("device_errors")
    crashes_seen = registry_counter("crashes_seen")
    gave_up = registry_counter("gave_up")

    def as_dict(self) -> Dict[str, int]:
        return {field: self._counters[field].value for field in self._FIELDS}


class _AttemptFailed(Exception):
    """Internal: one attempt (possibly hedged) failed with a device error."""

    def __init__(self, error: DeviceError, trial: ScanCheckpoint):
        super().__init__(str(error))
        self.error = error
        self.trial = trial


class ResilientScanDriver:
    """Checkpointed, hedged, replica-failing-over NDP scans."""

    def __init__(
        self,
        system,
        devices: Optional[List[int]] = None,
        policy: Optional[RetryPolicy] = None,
        hedge: Optional[HedgePolicy] = None,
        recovery: Optional[RecoveryTracker] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.system = system
        self.devices = (list(devices) if devices is not None
                        else list(range(system.num_ssds)))
        if not self.devices:
            raise ValueError("need at least one device to scan")
        self.policy = policy or RetryPolicy()
        self.hedge = hedge
        self.recovery = recovery
        # Counters land in the system-wide registry (metrics sidecars) by
        # default; pass a private registry to keep a driver's scoreboard
        # separate.
        if registry is None:
            registry = system.metrics
        self.stats = ResilienceStats(registry)
        if hedge is not None:
            hedge.bind_registry(registry)
        if recovery is not None:
            recovery.bind_registry(registry)
        self._ssds: Dict[int, SSD] = {}
        self._mids: Dict[int, int] = {}

    # ------------------------------------------------------------ device state
    def _ssd(self, device: int) -> SSD:
        facade = self._ssds.get(device)
        if facade is None:
            facade = SSD(self.system, device_index=device)
            self._ssds[device] = facade
        return facade

    def _ensure_module(self, device: int) -> Generator:
        """Fiber: the ScanFilter module's mid on ``device`` (load on first
        use — a failover's re-load goes through this same timed path)."""
        mid = self._mids.get(device)
        if mid is None:
            fs = self.system.filesystems[device]
            if not fs.exists(MODULE_IMAGE_PATH):
                write_module_image(fs, MODULE_IMAGE_PATH, NDP_MODULE)
            mid = yield from self._ssd(device).loadModule(MODULE_IMAGE_PATH)
            self._mids[device] = mid
        return mid

    def _next_device(self, device: int) -> int:
        position = self.devices.index(device)
        return self.devices[(position + 1) % len(self.devices)]

    def _pick_retry_device(self, device: int) -> int:
        if not self.policy.failover or len(self.devices) < 2:
            return device
        # Alternate away from the faulted device; prefer one that is not
        # itself inside a recovery window when the tracker knows better.
        candidate = self._next_device(device)
        if self.recovery is not None:
            probe = candidate
            for _ in range(len(self.devices) - 1):
                if not self.recovery.in_recovery(probe):
                    return probe
                probe = self._next_device(probe)
        return candidate

    # ----------------------------------------------------------------- attempts
    def _attempt(self, spec: ScanSpec, device: int,
                 ckpt: ScanCheckpoint) -> Generator:
        """Fiber: run every pending range on ``device``, committing into
        ``ckpt`` as markers arrive.  Raises the first device error."""
        pending = ckpt.pending()
        if not pending:
            return
        if any(ckpt.ranges[i].committed_page > ckpt.ranges[i].first_page
               for i in pending):
            self.stats.resumes += 1
        mid = yield from self._ensure_module(device)
        ssd = self._ssd(device)
        app = Application(ssd, "resilient-scan-d%d" % device)
        try:
            token = DeviceFile(ssd, spec.path, use_matcher=spec.use_matcher,
                               cache_bypass=True)
            ports = []
            for index in pending:
                r = ckpt.ranges[index]
                job = {
                    "page_rows": spec.page_rows,
                    "prefilter": spec.prefilter,
                    "predicate": spec.predicate,
                    "out_idx": spec.out_idx,
                    "page_size": spec.page_size,
                    "batch_rows": spec.batch_rows,
                    "first_page": r.committed_page,
                    "num_pages": r.end_page - r.committed_page,
                    "software_scan": not spec.use_matcher,
                    "checkpoint_pages": self.policy.checkpoint_pages,
                }
                proxy = SSDLetProxy(app, mid, "idScanFilter", (token, job))
                ports.append((index, app.connectTo(proxy.out(0), Packet)))
            yield from app.start()
            for index, port in ports:
                while True:
                    packet = yield from port.get_opt()
                    if packet is None:
                        break
                    tag, batch, end_page = pickle.loads(packet.payload)
                    assert tag == "rows"
                    ckpt.stage(index, batch)
                    if end_page is not None:
                        ckpt.commit(index, end_page)
            # Re-raises the first SSDlet failure into this fiber.
            yield from app.wait()
        finally:
            app.stop()

    def _guarded_attempt(self, spec: ScanSpec, device: int,
                         trial: ScanCheckpoint) -> Generator:
        """Fiber: an attempt that returns its outcome instead of raising, so
        hedge legs can race under ``any_of`` without failure propagation."""
        try:
            yield from self._attempt(spec, device, trial)
            return ("ok", None)
        except DeviceError as exc:
            trial.abort()
            return ("err", exc)

    def _hedged_attempt(self, spec: ScanSpec, device: int,
                        base: ScanCheckpoint) -> Generator:
        """Fiber: primary attempt with a deadline-fired backup leg.

        Returns the winning leg's checkpoint clone; raises
        :class:`_AttemptFailed` when both legs die.  The losing leg is
        interrupted — mid-I/O if need be.
        """
        sim = self.system.sim
        trace = sim.trace
        start_ns = sim.now
        primary_trial = base.clone()
        if trace is not None:
            with trace.child_scope("primary-d%d" % device):
                primary_leg = sim.process(
                    self._guarded_attempt(spec, device, primary_trial),
                    name="hedge-primary-d%d" % device)
        else:
            primary_leg = sim.process(
                self._guarded_attempt(spec, device, primary_trial),
                name="hedge-primary-d%d" % device)
        primary_leg.defused = True
        deadline = sim.timeout(us_to_ns(self.hedge.deadline_us()))
        yield any_of(sim, [primary_leg, deadline])
        if primary_leg.triggered:
            status, error = primary_leg.value
            if status == "ok":
                self.hedge.observe((sim.now - start_ns) / 1000.0)
                self.hedge.primary_wins += 1
                return primary_trial
            raise _AttemptFailed(error, primary_trial)
        # The primary outlived its deadline: fire the backup leg.
        self.hedge.hedges_fired += 1
        if trace is not None:
            # The deadline window the scan sat armed but unhedged.
            trace.complete("resil", "hedge-wait", "host/resil", start_ns,
                           device=device)
        hedge_device = self._next_device(device)
        hedge_trial = base.clone()
        if trace is not None:
            with trace.child_scope("hedge-d%d" % hedge_device):
                hedge_leg = sim.process(
                    self._guarded_attempt(spec, hedge_device, hedge_trial),
                    name="hedge-backup-d%d" % hedge_device)
        else:
            hedge_leg = sim.process(
                self._guarded_attempt(spec, hedge_device, hedge_trial),
                name="hedge-backup-d%d" % hedge_device)
        hedge_leg.defused = True
        first = yield any_of(sim, [primary_leg, hedge_leg])
        del first  # winner identified by inspecting the legs (deterministic)
        legs = [(primary_leg, primary_trial, device, True),
                (hedge_leg, hedge_trial, hedge_device, False)]
        winner = next((leg for leg in legs if leg[0].triggered), None)
        loser = legs[1] if winner is legs[0] else legs[0]
        status, error = winner[0].value
        if status == "ok":
            if loser[0].is_alive:
                loser[0].interrupt("hedge loser")
            if winner[3]:
                self.hedge.observe((sim.now - start_ns) / 1000.0)
                self.hedge.primary_wins += 1
            else:
                self.hedge.hedge_wins += 1
            return winner[1]
        # The first leg to finish *failed* (e.g. a fault on the replica
        # during the hedge): note it and wait the other leg out.
        if self.recovery is not None:
            self.recovery.note_fault(winner[2])
        self.stats.device_errors += 1
        if isinstance(error, DeviceCrashedError):
            self.stats.crashes_seen += 1
        yield loser[0]
        other_status, other_error = loser[0].value
        if other_status == "ok":
            if not loser[3]:
                self.hedge.hedge_wins += 1
                self.hedge.failovers += 1
            else:
                self.hedge.observe((sim.now - start_ns) / 1000.0)
                self.hedge.primary_wins += 1
            return loser[1]
        raise _AttemptFailed(other_error, primary_trial)

    # --------------------------------------------------------------------- scan
    def scan(self, spec: ScanSpec,
             primary: Optional[int] = None) -> Generator:
        """Fiber: the surviving projected rows, exactly once, despite faults.

        Raises the last :class:`DeviceError` only after the retry budget is
        exhausted (``RetryPolicy.retry_limit`` failed attempts).
        """
        sim = self.system.sim
        trace = sim.trace
        scan_start_ns = sim.now if trace is not None else 0
        self.stats.scans += 1
        ckpt = ScanCheckpoint.for_pages(spec.num_pages, spec.workers)
        device = primary if primary is not None else self.devices[0]
        failures = 0
        while not ckpt.done:
            try:
                if self.hedge is not None and len(self.devices) > 1:
                    winner = yield from self._hedged_attempt(spec, device, ckpt)
                    ckpt.adopt(winner)
                else:
                    trial = ckpt.clone()
                    try:
                        yield from self._attempt(spec, device, trial)
                    except DeviceError as exc:
                        trial.abort()
                        raise _AttemptFailed(exc, trial) from exc
                    ckpt.adopt(trial)
            except _AttemptFailed as fail:
                # Keep the commits the dead attempt made before it failed —
                # that is the resume machinery paying off.
                ckpt.adopt(fail.trial)
                error = fail.error
                self.stats.device_errors += 1
                if isinstance(error, DeviceCrashedError):
                    self.stats.crashes_seen += 1
                if self.recovery is not None:
                    self.recovery.note_fault(device)
                failures += 1
                if failures > self.policy.retry_limit:
                    self.stats.gave_up += 1
                    raise error
                self.stats.retries += 1
                retry_device = self._pick_retry_device(device)
                if retry_device != device:
                    self.stats.failovers += 1
                    device = retry_device
                backoff_start_ns = sim.now if trace is not None else 0
                yield sim.timeout(self.policy.backoff_ns(failures))
                if trace is not None:
                    trace.complete("resil", "backoff", "host/resil",
                                   backoff_start_ns, attempt=failures)
        if trace is not None:
            trace.complete("resil", "scan", "host/resil", scan_start_ns,
                           pages=spec.num_pages)
        return ckpt.collect()

    def counters(self) -> Dict[str, int]:
        merged = dict(self.stats.as_dict())
        if self.hedge is not None:
            hedge = self.hedge.counters()
            # Both scoreboards track failovers (device-switch retries here,
            # hedge-covered primary failures there): report the sum.
            merged["failovers"] += hedge.pop("failovers")
            merged.update(hedge)
        if self.recovery is not None:
            merged.update(self.recovery.counters())
        return merged
