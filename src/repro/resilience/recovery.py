"""Recovery windows: which devices recently faulted and deserve slack.

A device that just threw a media error or crashed is usually mid-recovery
(read retries, remap, reboot); re-saturating it immediately both slows its
recovery and queues new requests behind the backlog.  The tracker records
the last fault time per device; a device is *recovering* for
``window_us`` after its last fault.  The serving layer consults this to
steer placement away from — and shed SLO-bound load during — recovery
windows.
"""

from __future__ import annotations

from typing import Dict, List

from repro.instrument.metrics import Counter, registry_counter
from repro.sim.units import us_to_ns

__all__ = ["RecoveryTracker"]


class RecoveryTracker:
    """Per-device fault recency, driven by the simulation clock."""

    def __init__(self, sim, window_us: float = 5000.0):
        if window_us < 0:
            raise ValueError("recovery window cannot be negative")
        self.sim = sim
        self.window_ns = us_to_ns(window_us)
        self._last_fault_ns: Dict[int, int] = {}
        self._counters = {"faults_noted": Counter("recovery.faults_noted")}

    faults_noted = registry_counter("faults_noted")

    def bind_registry(self, registry,
                      prefix: str = "resilience.recovery") -> None:
        """Re-home the fault counter into ``registry`` (value carries over)."""
        counter = registry.counter("%s.faults_noted" % prefix)
        counter.value = self._counters["faults_noted"].value
        self._counters["faults_noted"] = counter

    def note_fault(self, device_index: int) -> None:
        """A device-level fault was observed on ``device_index`` just now."""
        self._last_fault_ns[device_index] = self.sim.now
        self.faults_noted += 1

    def in_recovery(self, device_index: int) -> bool:
        last = self._last_fault_ns.get(device_index)
        if last is None:
            return False
        return self.sim.now - last < self.window_ns

    def recovering_devices(self) -> List[int]:
        """Sorted indexes of devices currently inside their window."""
        return sorted(index for index in self._last_fault_ns
                      if self.in_recovery(index))

    def counters(self) -> dict:
        return {"faults_noted": self.faults_noted}
