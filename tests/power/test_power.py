"""Power meter: sampling, utilization windows, energy integration."""

from repro.power.model import PowerMeter, PowerParams
from repro.sim.units import MIB, s_to_ns


def test_idle_system_draws_idle_power(system):
    meter = PowerMeter(system, interval_s=0.01)
    meter.start()
    system.sim.run(until=s_to_ns(0.1))
    meter.stop()
    assert meter.series
    for _, watts in meter.series:
        assert abs(watts - meter.params.idle_w) < 0.01


def test_host_work_raises_power(system):
    meter = PowerMeter(system, interval_s=0.01)
    meter.start()

    def burn():
        for _ in range(10):
            yield from system.cpu.occupy(10_000.0, memory_bound=False)

    system.run_fiber(burn())
    meter.stop()
    peak = max(watts for _, watts in meter.series)
    assert abs(peak - (meter.params.idle_w + meter.params.host_core_w)) < 1.0


def test_ssd_activity_raises_power(system):
    system.fs.install_synthetic("/d", 64 * MIB)
    handle = system.open_internal("/d")
    meter = PowerMeter(system, interval_s=0.001)
    meter.start()

    def stream():
        for i in range(16):
            yield from handle.read_timing_only(i * 4 * MIB, 4 * MIB)

    system.run_fiber(stream())
    meter.stop()
    peak = max(watts for _, watts in meter.series)
    assert peak > meter.params.idle_w + 10


def test_average_window(system):
    meter = PowerMeter(system, interval_s=0.01)
    meter.start()
    system.sim.run(until=s_to_ns(0.05))
    meter.stop()
    assert abs(meter.average_w() - meter.params.idle_w) < 0.01
    assert meter.average_w(10.0, 20.0) == meter.params.idle_w  # empty window


def test_energy_integrates_power(system):
    meter = PowerMeter(system, interval_s=0.01)
    meter.start()
    system.sim.run(until=s_to_ns(1.0))
    meter.stop()
    # Idle for 1 s at 103 W = 0.103 kJ.
    assert abs(meter.energy_kj() - 0.103) < 0.002


def test_meter_restart_is_safe(system):
    meter = PowerMeter(system)
    meter.start()
    meter.start()
    system.sim.run(until=s_to_ns(0.5))
    meter.stop()
    meter.stop()


def test_custom_params(system):
    params = PowerParams(idle_w=50.0)
    meter = PowerMeter(system, params=params, interval_s=0.01)
    meter.start()
    system.sim.run(until=s_to_ns(0.05))
    meter.stop()
    assert abs(meter.average_w() - 50.0) < 0.01
