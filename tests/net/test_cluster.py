"""Network links, storage nodes, scale-out strategies."""

import pytest

from repro.apps.scaleout_search import install_cluster_weblog, run_strategy
from repro.net.cluster import NetworkLink, ScaleOutCluster
from repro.sim.engine import Simulator, all_of
from repro.sim.units import MIB


# -------------------------------------------------------------------- links
def test_link_serialization_time():
    sim = Simulator()
    link = NetworkLink(sim, bytes_per_sec=1e9, latency_us=0.0)
    sim.run(sim.process(link.send(1_000_000)))
    assert abs(sim.now_s - 0.001) < 1e-9


def test_link_latency_added():
    sim = Simulator()
    link = NetworkLink(sim, bytes_per_sec=1e9, latency_us=50.0)
    sim.run(sim.process(link.send(1000)))
    assert sim.now_us >= 50.0


def test_link_messages_serialize_but_latency_pipelines():
    sim = Simulator()
    link = NetworkLink(sim, bytes_per_sec=1e9, latency_us=100.0)
    fibers = [sim.process(link.send(1_000_000)) for _ in range(4)]
    sim.run(all_of(sim, fibers))
    # 4 x 1ms serialization back to back + one trailing latency.
    assert abs(sim.now_s - (0.004 + 100e-6)) < 1e-6
    assert link.bytes_moved == 4_000_000


def test_link_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        NetworkLink(sim, bytes_per_sec=0)
    with pytest.raises(ValueError):
        NetworkLink(sim, latency_us=-1)


# ------------------------------------------------------------------ cluster
def test_cluster_wiring():
    cluster = ScaleOutCluster(num_nodes=3, ssds_per_node=2)
    assert cluster.num_nodes == 3
    for node in cluster.nodes:
        assert node.system.sim is cluster.sim
        assert node.system.num_ssds == 2


def test_cluster_needs_nodes():
    with pytest.raises(ValueError):
        ScaleOutCluster(num_nodes=0)


def test_rpc_round_trip_costs_latency_twice():
    cluster = ScaleOutCluster(num_nodes=1, link_latency_us=100.0)
    node = cluster.nodes[0]

    def work():
        yield cluster.sim.timeout(0)
        return "done"

    value = cluster.run_fiber(node.serve(work(), 128, 128))
    assert value == "done"
    assert cluster.sim.now_us >= 200.0
    assert node.rpcs_served == 1


def test_fan_out_reaches_every_node():
    cluster = ScaleOutCluster(num_nodes=4)

    def make_work(node):
        def work():
            yield cluster.sim.timeout(1000)
            return node.name

        return work()

    names = cluster.run_fiber(cluster.fan_out(make_work))
    assert sorted(names) == ["node0", "node1", "node2", "node3"]


# --------------------------------------------------------------- strategies
@pytest.fixture(scope="module")
def loaded_cluster():
    cluster = ScaleOutCluster(num_nodes=2, ssds_per_node=2, node_cores=4)
    install_cluster_weblog(cluster, 128 * MIB, "KEY")
    return cluster


def test_all_strategies_complete(loaded_cluster):
    for strategy in ("pull", "node-compute", "in-ssd-ndp"):
        _, elapsed = run_strategy(loaded_cluster, strategy, "KEY")
        assert elapsed > 0


def test_strategy_ordering(loaded_cluster):
    _, pull_s = run_strategy(loaded_cluster, "pull", "KEY")
    _, node_s = run_strategy(loaded_cluster, "node-compute", "KEY")
    _, ndp_s = run_strategy(loaded_cluster, "in-ssd-ndp", "KEY")
    assert pull_s > node_s > ndp_s


def test_ndp_counts_deterministic(loaded_cluster):
    first, _ = run_strategy(loaded_cluster, "in-ssd-ndp", "KEY")
    second, _ = run_strategy(loaded_cluster, "in-ssd-ndp", "KEY")
    assert first == second > 0


def test_pull_is_link_bound():
    slow = ScaleOutCluster(num_nodes=2, ssds_per_node=1,
                           link_bytes_per_sec=0.5e9)
    install_cluster_weblog(slow, 64 * MIB, "KEY")
    _, elapsed = run_strategy(slow, "pull", "KEY")
    rate = 64 * MIB / elapsed
    assert rate <= 2 * 0.5e9 * 1.05
