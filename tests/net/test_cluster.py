"""Network links, storage nodes, scale-out strategies."""

import pytest

from repro.apps.scaleout_search import install_cluster_weblog, run_strategy
from repro.net.cluster import NetworkLink, ScaleOutCluster
from repro.sim.engine import Simulator, all_of
from repro.sim.units import MIB


# -------------------------------------------------------------------- links
def test_link_serialization_time():
    sim = Simulator()
    link = NetworkLink(sim, bytes_per_sec=1e9, latency_us=0.0)
    sim.run(sim.process(link.send(1_000_000)))
    assert abs(sim.now_s - 0.001) < 1e-9


def test_link_latency_added():
    sim = Simulator()
    link = NetworkLink(sim, bytes_per_sec=1e9, latency_us=50.0)
    sim.run(sim.process(link.send(1000)))
    assert sim.now_us >= 50.0


def test_link_messages_serialize_but_latency_pipelines():
    sim = Simulator()
    link = NetworkLink(sim, bytes_per_sec=1e9, latency_us=100.0)
    fibers = [sim.process(link.send(1_000_000)) for _ in range(4)]
    sim.run(all_of(sim, fibers))
    # 4 x 1ms serialization back to back + one trailing latency.
    assert abs(sim.now_s - (0.004 + 100e-6)) < 1e-6
    assert link.bytes_moved == 4_000_000


def test_link_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        NetworkLink(sim, bytes_per_sec=0)
    with pytest.raises(ValueError):
        NetworkLink(sim, latency_us=-1)


# ------------------------------------------------------------------ cluster
def test_cluster_wiring():
    cluster = ScaleOutCluster(num_nodes=3, ssds_per_node=2)
    assert cluster.num_nodes == 3
    for node in cluster.nodes:
        assert node.system.sim is cluster.sim
        assert node.system.num_ssds == 2


def test_cluster_needs_nodes():
    with pytest.raises(ValueError):
        ScaleOutCluster(num_nodes=0)


def test_rpc_round_trip_costs_latency_twice():
    cluster = ScaleOutCluster(num_nodes=1, link_latency_us=100.0)
    node = cluster.nodes[0]

    def work():
        yield cluster.sim.timeout(0)
        return "done"

    value = cluster.run_fiber(node.serve(work(), 128, 128))
    assert value == "done"
    assert cluster.sim.now_us >= 200.0
    assert node.rpcs_served == 1


def test_fan_out_reaches_every_node():
    cluster = ScaleOutCluster(num_nodes=4)

    def make_work(node):
        def work():
            yield cluster.sim.timeout(1000)
            return node.name

        return work()

    names = cluster.run_fiber(cluster.fan_out(make_work))
    assert sorted(names) == ["node0", "node1", "node2", "node3"]


# --------------------------------------------------------------- strategies
@pytest.fixture(scope="module")
def loaded_cluster():
    cluster = ScaleOutCluster(num_nodes=2, ssds_per_node=2, node_cores=4)
    install_cluster_weblog(cluster, 128 * MIB, "KEY")
    return cluster


def test_all_strategies_complete(loaded_cluster):
    for strategy in ("pull", "node-compute", "in-ssd-ndp"):
        _, elapsed = run_strategy(loaded_cluster, strategy, "KEY")
        assert elapsed > 0


def test_strategy_ordering(loaded_cluster):
    _, pull_s = run_strategy(loaded_cluster, "pull", "KEY")
    _, node_s = run_strategy(loaded_cluster, "node-compute", "KEY")
    _, ndp_s = run_strategy(loaded_cluster, "in-ssd-ndp", "KEY")
    assert pull_s > node_s > ndp_s


def test_ndp_counts_deterministic(loaded_cluster):
    first, _ = run_strategy(loaded_cluster, "in-ssd-ndp", "KEY")
    second, _ = run_strategy(loaded_cluster, "in-ssd-ndp", "KEY")
    assert first == second > 0


def test_pull_is_link_bound():
    slow = ScaleOutCluster(num_nodes=2, ssds_per_node=1,
                           link_bytes_per_sec=0.5e9)
    install_cluster_weblog(slow, 64 * MIB, "KEY")
    _, elapsed = run_strategy(slow, "pull", "KEY")
    rate = 64 * MIB / elapsed
    assert rate <= 2 * 0.5e9 * 1.05


# --------------------------------------------------------------- placement
def test_round_robin_cycles_indices():
    from repro.net.cluster import RoundRobinPlacement

    policy = RoundRobinPlacement()
    candidates = [(0, (0, 0)), (1, (0, 0)), (2, (0, 0))]
    picks = [policy.pick(candidates) for _ in range(6)]
    assert picks == [0, 1, 2, 0, 1, 2]


def test_round_robin_skips_ineligible():
    from repro.net.cluster import RoundRobinPlacement

    policy = RoundRobinPlacement()
    assert policy.pick([(0, (0, 0)), (1, (0, 0))]) == 0
    # Device 1 became ineligible (full): the cycle skips to 2, then wraps.
    assert policy.pick([(0, (1, 0)), (2, (0, 0))]) == 2
    assert policy.pick([(0, (1, 0)), (1, (0, 0))]) == 0


def test_least_loaded_picks_minimum_then_index():
    from repro.net.cluster import LeastLoadedPlacement

    policy = LeastLoadedPlacement()
    assert policy.pick([(0, (2, 5)), (1, (1, 9)), (2, (2, 0))]) == 1
    # Ties on load break on the smaller device index, deterministically.
    assert policy.pick([(2, (1, 3)), (0, (1, 3))]) == 0


def test_placement_rejects_empty_candidates():
    from repro.net.cluster import make_placement

    for name in ("round_robin", "least_loaded"):
        with pytest.raises(ValueError):
            make_placement(name).pick([])
    with pytest.raises(ValueError):
        make_placement("hash_ring")


def test_serving_jobs_spread_across_devices():
    """Multi-device serving: jobs land on distinct devices and each
    device's metrics live under its own dotted name."""
    from repro.serve.mixes import run_mix

    result = run_mix("multi_device", placement="round_robin")
    registry = result.system.metrics
    per_device = [
        registry.counter("serve.device%d.dispatched" % index).value
        for index in range(result.system.num_ssds)
    ]
    assert len(per_device) == 2
    assert all(count > 0 for count in per_device)
    # Distinct metric names really are distinct objects (no aliasing).
    assert registry.counter("serve.device0.dispatched") is not \
        registry.counter("serve.device1.dispatched")
    assert sum(per_device) <= result.manager.jobs_submitted


def test_least_loaded_tie_break_survives_perturbation():
    """Regression: the least-loaded pick may only depend on the candidate
    *set*, never on arrival order.  Four same-timestamp fibers each present
    the same all-tied candidate set in a different rotation; the race
    monitor's perturbation harness then re-runs the workload with the pop
    order *reversed* inside every provably order-free batch.  Every fiber
    must still pick device 0 (lowest index), and the trace digest must stay
    byte-identical under the reversal."""
    from repro.analysis.races import check_workload
    from repro.net.cluster import LeastLoadedPlacement
    from repro.sim.engine import Simulator

    def workload():
        sim = Simulator()
        policy = LeastLoadedPlacement()
        picks = {}

        def chooser(fiber_id):
            # Stagger the scheduling moments (so batches stay provably
            # order-free), then converge on one timestamp for the pick.
            yield sim.timeout(fiber_id + 1)
            yield sim.timeout(1000 - fiber_id)
            candidates = [(index, (1, 0)) for index in range(4)]
            rotation = candidates[fiber_id:] + candidates[:fiber_id]
            picks[fiber_id] = policy.pick(rotation)

        for fiber_id in range(4):
            sim.process(chooser(fiber_id), name="chooser%d" % fiber_id)
        sim.run()
        return tuple(picks[i] for i in range(4))

    report = check_workload(workload, require_reversals=True)
    assert report.clean, report.render()
    assert report.reversed_batches > 0  # the perturbation really engaged
    # Ties resolve to the lowest index whatever the presentation order.
    assert report.result == (0, 0, 0, 0)


# --------------------------------------------------------- replica placement
def test_replica_map_rotation_placement():
    from repro.net.cluster import ReplicaMap

    replica_map = ReplicaMap(num_shards=6, num_nodes=3, replication=2)
    assert replica_map.primary(0) == 0
    assert replica_map.primary(4) == 1
    assert replica_map.replicas(0) == [1]
    assert replica_map.replicas(2) == [0]  # ring wraps
    assert replica_map.nodes_for(5) == [2, 0]


def test_replica_map_spreads_a_dead_nodes_load():
    """Rotation means node 0's shards are replicated across *every* other
    node, not mirrored onto a single partner."""
    from repro.net.cluster import ReplicaMap

    replica_map = ReplicaMap(num_shards=12, num_nodes=4, replication=2)
    backups = {replica_map.replicas(s)[0]
               for s in replica_map.primaries_on(0)}
    assert backups == {1}  # with replication=2 the next node backs up...
    replica_map = ReplicaMap(num_shards=12, num_nodes=4, replication=3)
    backups = set()
    for shard in replica_map.primaries_on(0):
        backups.update(replica_map.replicas(shard))
    assert backups == {1, 2}  # ...and wider replication fans further


def test_replica_map_shards_on_counts_every_copy():
    from repro.net.cluster import ReplicaMap

    replica_map = ReplicaMap(num_shards=8, num_nodes=4, replication=2)
    for node in range(4):
        held = replica_map.shards_on(node)
        assert held == sorted(held)
        # Each node holds its primaries plus its predecessors' replicas.
        assert len(held) == len(replica_map.primaries_on(node)) * 2


def test_replica_map_validation():
    from repro.net.cluster import ReplicaMap

    with pytest.raises(ValueError):
        ReplicaMap(num_shards=0, num_nodes=2)
    with pytest.raises(ValueError):
        ReplicaMap(num_shards=2, num_nodes=0)
    with pytest.raises(ValueError):
        ReplicaMap(num_shards=2, num_nodes=2, replication=3)


# --------------------------------------------------------------- hedged reads
def _hedge_fixture(num_nodes=2):
    from repro.net.cluster import ReplicaMap
    from repro.resilience import HedgePolicy

    cluster = ScaleOutCluster(num_nodes=num_nodes, link_latency_us=10.0)
    replica_map = ReplicaMap(num_shards=num_nodes, num_nodes=num_nodes)
    return cluster, replica_map, HedgePolicy


def test_hedged_call_fast_primary_never_hedges():
    cluster, replica_map, HedgePolicy = _hedge_fixture()
    policy = HedgePolicy(default_us=1_000_000.0)

    def make_work(node):
        def work():
            yield cluster.sim.timeout(1000)
            return node.name

        return work()

    value = cluster.run_fiber(
        cluster.hedged_call(0, replica_map, make_work, policy))
    assert value == cluster.nodes[0].name
    assert policy.counters() == {"hedges_fired": 0, "hedge_wins": 0,
                                 "primary_wins": 1, "failovers": 0}


def test_hedged_call_slow_primary_loses_to_replica():
    from repro.sim.units import us_to_ns

    cluster, replica_map, HedgePolicy = _hedge_fixture()
    policy = HedgePolicy(default_us=300.0)

    def make_work(node):
        def work():
            # The primary (node 0) wedges; the replica answers promptly.
            delay_us = 50_000.0 if node is cluster.nodes[0] else 50.0
            yield cluster.sim.timeout(us_to_ns(delay_us))
            return node.name

        return work()

    value = cluster.run_fiber(
        cluster.hedged_call(0, replica_map, make_work, policy))
    assert value == cluster.nodes[1].name
    assert policy.hedges_fired == 1
    assert policy.hedge_wins == 1
    assert policy.primary_wins == 0
    # The loser was interrupted, not left running to the 50ms mark.
    assert cluster.sim.now_us < 50_000.0


def test_hedged_call_failing_primary_fails_over_before_the_deadline():
    from repro.core.errors import DeviceError

    cluster, replica_map, HedgePolicy = _hedge_fixture()
    policy = HedgePolicy(default_us=1_000_000.0)

    def make_work(node):
        def work():
            yield cluster.sim.timeout(1000)
            if node is cluster.nodes[0]:
                raise DeviceError("primary media error")
            return node.name

        return work()

    value = cluster.run_fiber(
        cluster.hedged_call(0, replica_map, make_work, policy))
    assert value == cluster.nodes[1].name
    assert policy.failovers == 1
    assert policy.hedges_fired == 0  # no deadline wait: straight failover
    # Failing over did not burn the megasecond hedge deadline.
    assert cluster.sim.now_us < 10_000.0


def test_hedged_call_raises_only_when_every_copy_fails():
    from repro.core.errors import DeviceError

    cluster, replica_map, HedgePolicy = _hedge_fixture()
    policy = HedgePolicy(default_us=100.0)

    def make_work(node):
        def work():
            yield cluster.sim.timeout(1000)
            raise DeviceError("%s down" % node.name)

        return work()

    with pytest.raises(DeviceError):
        cluster.run_fiber(
            cluster.hedged_call(0, replica_map, make_work, policy))


def test_hedged_call_single_replica_degenerates_to_plain_rpc():
    cluster, replica_map, HedgePolicy = _hedge_fixture()
    from repro.net.cluster import ReplicaMap

    solo = ReplicaMap(num_shards=2, num_nodes=2, replication=1)
    policy = HedgePolicy(default_us=100.0)

    def make_work(node):
        def work():
            yield cluster.sim.timeout(1000)
            return node.name

        return work()

    value = cluster.run_fiber(
        cluster.hedged_call(1, solo, make_work, policy))
    assert value == cluster.nodes[1].name
    assert policy.hedges_fired == 0
    assert policy.primary_wins == 1
