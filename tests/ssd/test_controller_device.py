"""Controller + device: latency calibration, striping, matcher costs, content."""

import pytest

from repro.sim.engine import Simulator, all_of
from repro.sim.units import MIB, us_to_ns
from repro.ssd.config import SSDConfig
from repro.ssd.device import SSDDevice


def make_device(**overrides):
    sim = Simulator()
    return sim, SSDDevice(sim, SSDConfig(**overrides))


def run(sim, fiber):
    start = sim.now
    sim.run(sim.process(fiber))
    return (sim.now - start) / 1e3  # microseconds


# ------------------------------------------------------------- calibration
def test_internal_4k_read_is_paper_latency():
    sim, device = make_device()
    latency = run(sim, device.internal_read([0]))
    assert abs(latency - 75.9) < 1.0  # Table III


def test_host_4k_read_adds_interface_crossing():
    sim, device = make_device()
    internal = run(sim, device.internal_read([0]))
    host = run(sim, device.host_read([1]))
    assert host > internal
    # PCIe payload + protocol, but no host driver cost at this layer.
    assert 1.0 < host - internal < 5.0


def test_matcher_read_costs_more_cpu_not_less():
    sim, device = make_device()
    plain = run(sim, device.internal_read([0]))
    matched = run(sim, device.internal_read([1], use_matcher=True))
    assert matched > plain


# ---------------------------------------------------------------- striping
def test_large_read_uses_all_channels():
    sim, device = make_device()
    pages = list(range(1024))  # 4 MiB
    run(sim, device.internal_read(pages))
    busy_channels = sum(1 for ch in device.nand.channels if ch.reads > 0)
    assert busy_channels == device.config.channels


def test_large_read_bandwidth_beats_host_interface():
    sim, device = make_device()
    total = 64 * MIB
    pages_per_req = MIB // 4096

    def worker(start):
        for request in range(start, total // MIB, 16):
            base = request * pages_per_req
            yield from device.internal_read(list(range(base, base + pages_per_req)))

    fibers = [sim.process(worker(i)) for i in range(16)]
    sim.run(all_of(sim, fibers))
    bandwidth = total / sim.now_s / 1e9
    assert bandwidth > 1.3 * device.config.pcie_bytes_per_sec / 1e9


def test_empty_read_is_free():
    sim, device = make_device()
    assert run(sim, device.internal_read([])) == 0.0


# ------------------------------------------------------------------ writes
def test_internal_write_programs_pages():
    sim, device = make_device()
    run(sim, device.internal_write(list(range(8))))
    assert device.ftl.host_pages_written == 8
    assert device.controller.stats.write_commands == 1


def test_written_pages_read_back_from_mapped_location():
    sim, device = make_device()
    run(sim, device.internal_write([5]))
    addr = device.ftl.translate(5)
    latency = run(sim, device.internal_read([5]))
    assert latency > 0
    assert device.nand[addr.channel].reads >= 1


# ------------------------------------------------------------------ content
def test_store_and_load_page_content():
    sim, device = make_device()
    device.store_page(9, b"hello")
    assert device.load_page(9).startswith(b"hello")


def test_unwritten_page_reads_zeroes():
    sim, device = make_device()
    data = device.load_page(1234)
    assert data == b"\x00" * device.config.logical_page_bytes


def test_oversized_page_rejected():
    sim, device = make_device()
    with pytest.raises(ValueError):
        device.store_page(0, b"x" * (device.config.logical_page_bytes + 1))


def test_discard_removes_content_and_mapping():
    sim, device = make_device()
    device.store_page(3, b"abc")
    run(sim, device.internal_write([3]))
    device.discard_pages([3])
    assert device.load_page(3) == b"\x00" * device.config.logical_page_bytes
    assert not device.ftl.is_mapped(3)


# --------------------------------------------------------------- software
def test_software_scan_rate():
    sim, device = make_device()
    elapsed_us = run(sim, device.controller.software_scan(12 * MIB))
    expected_us = 12 * MIB / device.config.device_scan_bytes_per_sec_per_core * 1e6
    assert abs(elapsed_us - expected_us) < 1.0


def test_device_compute_occupies_core():
    sim, device = make_device()
    elapsed = run(sim, device.controller.device_compute(50.0))
    assert abs(elapsed - 50.0) < 0.01


def test_matcher_for_lpn_maps_to_placement_channel():
    sim, device = make_device()
    matcher = device.matcher_for_lpn(0)
    channel, _ = device.controller.placement(0)
    assert matcher.channel_index == channel
