"""FTL: mapping consistency, GC, wear leveling, write amplification."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.ssd.config import SSDConfig
from repro.ssd.ftl import FTL, OutOfSpace, PhysAddr
from repro.ssd.nand import NandArray


def make_ftl(channels=2, dies=1, blocks=4, pages=4):
    sim = Simulator()
    config = SSDConfig(
        channels=channels, dies_per_channel=dies,
        blocks_per_die=blocks, pages_per_block=pages,
    )
    nand = NandArray(sim, config)
    return sim, config, FTL(sim, config, nand)


def write(sim, ftl, lpns):
    sim.run(sim.process(ftl.write(list(lpns))))


def test_write_then_translate():
    sim, config, ftl = make_ftl()
    write(sim, ftl, range(8))
    for lpn in range(8):
        addr = ftl.translate(lpn)
        assert isinstance(addr, PhysAddr)
    assert ftl.mapped_pages == 8


def test_unmapped_translate_raises():
    _, _, ftl = make_ftl()
    with pytest.raises(KeyError):
        ftl.translate(5)
    assert not ftl.is_mapped(5)


def test_writes_stripe_across_channels():
    sim, config, ftl = make_ftl(channels=4)
    write(sim, ftl, range(16))
    channels = {ftl.translate(lpn).channel for lpn in range(16)}
    assert channels == {0, 1, 2, 3}


def test_overwrite_moves_and_invalidates():
    sim, config, ftl = make_ftl()
    write(sim, ftl, [7])
    first = ftl.translate(7)
    write(sim, ftl, [7])
    second = ftl.translate(7)
    assert first != second
    assert ftl.host_pages_written == 2


def test_two_lpns_never_share_a_slot():
    sim, config, ftl = make_ftl()
    write(sim, ftl, range(20))
    seen = set()
    for lpn in range(20):
        addr = ftl.translate(lpn)
        assert addr not in seen
        seen.add(addr)


def test_trim_removes_mapping():
    sim, config, ftl = make_ftl()
    write(sim, ftl, [1, 2, 3])
    ftl.trim([2])
    assert not ftl.is_mapped(2)
    assert ftl.is_mapped(1) and ftl.is_mapped(3)


def test_trim_unmapped_is_noop():
    _, _, ftl = make_ftl()
    ftl.trim([42])  # must not raise


def test_flush_programs_partial_pages():
    sim, config, ftl = make_ftl()
    write(sim, ftl, [0])  # one logical page: buffered, not yet programmed
    before = ftl.physical_pages_programmed
    sim.run(sim.process(ftl.flush()))
    assert ftl.physical_pages_programmed == before + 1


def test_gc_reclaims_overwritten_space():
    sim, config, ftl = make_ftl(channels=1, blocks=4, pages=2)
    # Device holds 4 blocks x 2 pages x 4 slots = 32 logical slots per die.
    # Overwrite a small working set repeatedly to force GC.
    for _ in range(12):
        write(sim, ftl, range(6))
    assert ftl.gc_runs > 0
    for lpn in range(6):
        assert ftl.is_mapped(lpn)


def test_write_amplification_grows_under_overwrites():
    sim, config, ftl = make_ftl(channels=1, blocks=4, pages=2)
    # Cold data shares blocks with hot data; GC must relocate the cold
    # slots when reclaiming the dead hot ones.
    write(sim, ftl, range(10))
    for _ in range(15):
        write(sim, ftl, [10, 11])
    assert ftl.relocated_pages > 0
    assert ftl.write_amplification > 1.0
    for lpn in range(10):
        assert ftl.is_mapped(lpn)


def test_out_of_space_when_full_of_live_data():
    sim, config, ftl = make_ftl(channels=1, blocks=3, pages=2)
    capacity = 3 * 2 * config.logical_pages_per_physical  # 24 slots
    with pytest.raises(OutOfSpace):
        for start in range(0, capacity * 2, 4):
            write(sim, ftl, range(start, start + 4))


def test_awaited_process_failure_surfaces_original_exception():
    """Regression: run(process) must raise OutOfSpace, not a masked
    SimulationError."""
    sim, config, ftl = make_ftl(channels=1, blocks=2, pages=1)
    try:
        for start in range(0, 64, 4):
            write(sim, ftl, range(start, start + 4))
    except OutOfSpace:
        return
    pytest.fail("expected OutOfSpace")


def test_wear_leveling_spreads_erases():
    sim, config, ftl = make_ftl(channels=1, blocks=6, pages=2)
    for _ in range(40):
        write(sim, ftl, range(6))
    counts = [c for c in ftl.erase_counts() if c > 0]
    assert len(counts) >= 3  # erases spread over several blocks
    assert max(counts) - min(counts) <= max(2, max(counts) // 2)


def test_negative_lpn_rejected():
    sim, _, ftl = make_ftl()
    proc = sim.process(ftl.write([-1]))
    proc.defused = True
    sim.run()
    assert isinstance(proc.exception, ValueError)


class _Model:
    """Reference model: the FTL must agree with a plain dict."""

    def __init__(self):
        self.live = set()


@settings(max_examples=25, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from(["write", "trim"]), st.integers(0, 15)),
    min_size=1, max_size=60,
))
def test_property_mapping_matches_reference(operations):
    sim, config, ftl = make_ftl(channels=2, dies=2, blocks=4, pages=2)
    model = _Model()
    for op, lpn in operations:
        if op == "write":
            write(sim, ftl, [lpn])
            model.live.add(lpn)
        else:
            ftl.trim([lpn])
            model.live.discard(lpn)
    for lpn in range(16):
        assert ftl.is_mapped(lpn) == (lpn in model.live)
    # No two live LPNs share a physical slot.
    addresses = [ftl.translate(lpn) for lpn in sorted(model.live)]
    assert len(set(addresses)) == len(addresses)
