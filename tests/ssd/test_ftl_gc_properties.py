"""Property-style GC coverage: sustained seeded random overwrites must never
lose a live page, must keep the map and the block slot arrays mutually
consistent, and must spread erases across blocks (wear leveling).
"""

import random

import pytest

from repro.core.errors import UncorrectableReadError
from repro.sim.engine import Simulator
from repro.ssd.config import SSDConfig
from repro.ssd.ftl import FTL
from repro.ssd.nand import NandArray
from repro.testing.faults import FaultInjector, FaultPlan

SEEDS = [0, 1, 2, 3, 4]


def make_ftl(channels=2, dies=1, blocks=8, pages=4):
    sim = Simulator()
    config = SSDConfig(
        channels=channels, dies_per_channel=dies,
        blocks_per_die=blocks, pages_per_block=pages,
    )
    nand = NandArray(sim, config)
    return sim, config, FTL(sim, config, nand)


def write(sim, ftl, lpns):
    sim.run(sim.process(ftl.write(list(lpns))))


def check_invariants(ftl, config, live_lpns):
    # 1. Exactly the written working set is mapped — GC lost nothing.
    assert set(ftl._map) == live_lpns

    # 2. Every mapping points at a slot that holds exactly that lpn.
    for lpn, addr in ftl._map.items():
        die = ftl._die_at(addr.channel, addr.die)
        assert die.blocks[addr.block].slots[addr.page][addr.slot] == lpn

    # 3. Per-block valid counters agree with the slot arrays, and no lpn
    #    occupies two slots.
    seen = []
    for die in ftl._dies:
        for block in die.blocks:
            slot_lpns = [lpn for page in block.slots for lpn in page
                         if lpn is not None]
            assert block.valid == len(slot_lpns)
            seen.extend(slot_lpns)
    assert len(seen) == len(set(seen))
    assert set(seen) == live_lpns


@pytest.mark.parametrize("seed", SEEDS)
def test_sustained_random_overwrites_keep_ftl_consistent(seed):
    sim, config, ftl = make_ftl()
    rng = random.Random(seed)
    # Working set at ~55% of raw capacity: plenty of room, constant churn.
    capacity = (config.channels * config.dies_per_channel
                * config.blocks_per_die * config.pages_per_block
                * config.logical_pages_per_physical)
    working_set = int(capacity * 0.55)

    write(sim, ftl, range(working_set))  # initial fill
    for _round in range(30):
        batch = [rng.randrange(working_set)
                 for _ in range(rng.randint(4, working_set // 2))]
        write(sim, ftl, batch)

    live = set(range(working_set))
    check_invariants(ftl, config, live)
    assert ftl.gc_runs > 0, "workload never triggered GC"
    assert ftl.write_amplification > 1.0

    # Invariants survive a flush of the half-filled open pages too.
    sim.run(sim.process(ftl.flush()))
    check_invariants(ftl, config, live)


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_trim_then_overwrite_consistency(seed):
    sim, config, ftl = make_ftl()
    rng = random.Random(seed)
    working_set = 48
    write(sim, ftl, range(working_set))
    live = set(range(working_set))
    for _round in range(20):
        if rng.random() < 0.3 and live:
            victims = rng.sample(sorted(live), rng.randint(1, min(8, len(live))))
            ftl.trim(victims)
            live.difference_update(victims)
        else:
            batch = [rng.randrange(working_set) for _ in range(rng.randint(4, 24))]
            write(sim, ftl, batch)
            live.update(batch)
    check_invariants(ftl, config, live)


def test_wear_leveling_bounds_erase_spread():
    sim, config, ftl = make_ftl()
    rng = random.Random(99)
    working_set = 40
    write(sim, ftl, range(working_set))
    # Skewed overwrites (hot set) — the classic wear-leveling stressor.
    for _round in range(800):
        hot = rng.random() < 0.8
        lpn = rng.randrange(8) if hot else rng.randrange(working_set)
        write(sim, ftl, [lpn])
    counts = ftl.erase_counts()
    assert ftl.gc_runs > 0
    assert max(counts) > 0
    # Least-erased-first free-block selection keeps the spread tight: no
    # block may be erased more than a handful of times past the minimum.
    assert max(counts) - min(counts) <= 3
    check_invariants(ftl, config, set(range(working_set)))


def test_gc_relocation_read_failure_is_typed_with_context():
    sim, config, ftl = make_ftl()
    write(sim, ftl, range(40))
    # From here on every media read fails: the next GC must surface a
    # context-rich typed error instead of silently dropping live pages.
    ftl.nand.attach_injector(FaultInjector(FaultPlan(seed=1, ecc_rate=1.0)))
    rng = random.Random(7)
    with pytest.raises(UncorrectableReadError) as info:
        # Random churn keeps GC victims partially live, forcing relocation
        # reads — the first of which must fail loudly.
        for _round in range(800):
            write(sim, ftl, [rng.randrange(40)])
    assert info.value.block is not None
    assert info.value.page is not None
    assert "GC relocation read failed" in str(info.value)
