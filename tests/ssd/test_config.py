"""SSDConfig validation and derived quantities."""

import pytest

from repro.sim.units import KIB
from repro.ssd.config import SSDConfig


def test_defaults_validate():
    SSDConfig().validate()


def test_logical_pages_per_physical():
    config = SSDConfig()
    assert config.logical_pages_per_physical == 4


def test_internal_bandwidth_exceeds_host_interface():
    config = SSDConfig()
    # The Fig. 7 headline: >30% more internal bandwidth than PCIe Gen3 x4.
    assert config.internal_bytes_per_sec > 1.3 * config.pcie_bytes_per_sec


def test_stripe_is_physical_page():
    config = SSDConfig()
    assert config.stripe_bytes == config.physical_page_bytes == 16 * KIB


def test_misaligned_pages_rejected():
    config = SSDConfig(logical_page_bytes=4096, physical_page_bytes=10000)
    with pytest.raises(ValueError):
        config.validate()


def test_zero_channels_rejected():
    with pytest.raises(ValueError):
        SSDConfig(channels=0).validate()


def test_overprovision_bounds():
    with pytest.raises(ValueError):
        SSDConfig(overprovision_ratio=0.9).validate()


def test_matcher_key_slots_required():
    with pytest.raises(ValueError):
        SSDConfig(matcher_max_keys=0).validate()


def test_total_logical_pages_positive_and_overprovisioned():
    config = SSDConfig()
    raw = (config.channels * config.dies_per_channel * config.blocks_per_die
           * config.pages_per_block * config.logical_pages_per_physical)
    assert 0 < config.total_logical_pages < raw
