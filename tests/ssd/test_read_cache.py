"""Device-DRAM read cache: replacement policy, device timing, coherence.

The coherence tests enforce the contract documented in repro.ssd.cache: a
remapped LPN, a reprogrammed physical page, or an erased block must never be
served from a stale line — including across GC relocation.
"""

import pytest

from repro.sim.engine import Simulator
from repro.ssd.cache import DeviceReadCache
from repro.ssd.config import SSDConfig
from repro.ssd.device import SSDDevice
from repro.testing.faults import FaultInjector, FaultPlan

PHYS = 16384  # default physical page (cache line) size


def make_cache(lines=4, policy="lru", **overrides):
    config = SSDConfig(read_cache_bytes=lines * PHYS,
                       read_cache_policy=policy, **overrides)
    return DeviceReadCache(config)


def make_device(**overrides):
    sim = Simulator()
    return sim, SSDDevice(sim, SSDConfig(**overrides))


def run(sim, fiber):
    start = sim.now
    sim.run(sim.process(fiber))
    return (sim.now - start) / 1e3  # microseconds


def cache_is_coherent(device):
    """Every cached line must agree with the controller's current placement."""
    cache = device.cache
    for lpn, key in cache._by_lpn.items():
        if device.controller.placement(lpn) != key:
            return False
    for store in (cache._hot, cache._probation):
        for key, line in store.items():
            for lpn in line:
                if device.controller.placement(lpn) != key:
                    return False
    return True


# ------------------------------------------------------------------- policy
def test_cache_disabled_by_default():
    cache = DeviceReadCache(SSDConfig())
    assert not cache.enabled
    assert not cache.lookup(0, 0)
    assert cache.stats.lookups == 0  # a disabled cache counts nothing
    cache.insert(0, 0, [0])
    assert len(cache) == 0


def test_lru_hit_refreshes_recency():
    cache = make_cache(lines=2)
    cache.insert(0, 0, [0])
    cache.insert(0, 1, [4])
    assert cache.lookup(0, 0)  # refresh line (0, 0)
    cache.insert(0, 2, [8])  # evicts (0, 1), the least recent
    assert (0, 0) in cache
    assert (0, 1) not in cache
    assert cache.stats.evictions == 1


def test_lru_capacity_is_line_count():
    cache = make_cache(lines=3)
    for physical in range(5):
        cache.insert(0, physical, [physical * 4])
    assert len(cache) == 3
    assert cache.stats.evictions == 2


def test_2q_first_touch_is_probationary():
    cache = make_cache(lines=4, policy="2q")
    cache.insert(0, 0, [0])
    assert (0, 0) in cache._probation
    assert (0, 0) not in cache._hot


def test_2q_second_touch_promotes():
    cache = make_cache(lines=4, policy="2q")
    cache.insert(0, 0, [0])
    assert cache.lookup(0, 0)
    assert (0, 0) in cache._hot
    assert (0, 0) not in cache._probation


def test_2q_sweep_cannot_evict_hot_lines():
    cache = make_cache(lines=4, policy="2q")  # 2 hot + 2 probationary lines
    cache.insert(0, 0, [0])
    cache.lookup(0, 0)  # promoted: this is the working set
    for physical in range(100, 140):  # one long sequential sweep
        cache.insert(0, physical, [physical * 4])
    assert cache.lookup(0, 0), "sweep evicted the protected hot line"


def test_lru_sweep_does_evict_everything():
    cache = make_cache(lines=4, policy="lru")
    cache.insert(0, 0, [0])
    cache.lookup(0, 0)
    for physical in range(100, 140):
        cache.insert(0, physical, [physical * 4])
    assert not cache.lookup(0, 0)  # the contrast with 2Q above


def test_invalidate_lpn_drops_slot_then_line():
    cache = make_cache()
    cache.insert(0, 7, [28, 29])
    cache.invalidate_lpn(28)
    assert (0, 7) in cache  # 29 is still valid
    assert cache.resident_lpns((0, 7)) == {29}
    cache.invalidate_lpn(29)
    assert (0, 7) not in cache
    assert cache.stats.invalidations == 2


def test_invalidate_physical_range_covers_block():
    cache = make_cache(lines=8)
    for physical in range(4):
        cache.insert(1, physical, [physical])
    cache.insert(2, 0, [1000])
    cache.invalidate_physical_range(1, 0, 4)
    assert len(cache) == 1  # only the channel-2 line survives
    assert (2, 0) in cache


def test_insert_merges_lpns_into_resident_line():
    cache = make_cache()
    cache.insert(0, 3, [12])
    cache.insert(0, 3, [13])
    assert cache.resident_lpns((0, 3)) == {12, 13}
    assert cache.stats.insertions == 1  # the second insert was a merge


# ------------------------------------------------------------ device timing
def test_second_read_served_from_dram():
    sim, device = make_device(read_cache_bytes=64 * PHYS)
    cold = run(sim, device.internal_read([0]))
    hot = run(sim, device.internal_read([0]))
    assert cold > 70.0  # Table III calibration unchanged by the cache
    assert hot < cold / 4
    assert device.controller.stats.cache_hits == 1
    assert device.controller.stats.cache_hit_rate == 0.5


def test_write_invalidates_cached_line():
    sim, device = make_device(read_cache_bytes=64 * PHYS)
    run(sim, device.internal_read([5]))
    nand_reads = sum(ch.reads for ch in device.nand.channels)
    run(sim, device.internal_write([5]))
    assert device.controller.stats.cache_invalidations >= 1
    relearn = run(sim, device.internal_read([5]))
    assert sum(ch.reads for ch in device.nand.channels) == nand_reads + 1
    assert relearn > 70.0  # the stale line did not serve the remapped page


def test_matcher_scan_bypasses_and_preserves_hot_set():
    sim, device = make_device(read_cache_bytes=4 * PHYS)
    run(sim, device.internal_read([0]))
    run(sim, device.internal_read([0]))  # line is now hot
    run(sim, device.internal_read(list(range(256)), use_matcher=True))
    assert device.controller.stats.cache_bypasses > 0
    assert len(device.cache) == 1  # the scan cached nothing
    hits = device.controller.stats.cache_hits
    run(sim, device.internal_read([0]))
    assert device.controller.stats.cache_hits == hits + 1


def test_cache_bypass_flag_streams_past_cache():
    sim, device = make_device(read_cache_bytes=64 * PHYS)
    run(sim, device.internal_read([0], cache_bypass=True))
    run(sim, device.internal_read([0], cache_bypass=True))
    assert len(device.cache) == 0
    assert device.controller.stats.cache_bypasses == 2
    assert device.controller.stats.cache_hits == 0


def test_utilization_monitor_reports_cache():
    from repro.host.platform import System
    system = System(ssd_config=SSDConfig(read_cache_bytes=64 * PHYS))
    sim = system.sim
    from repro.instrument.utilization import UtilizationMonitor
    monitor = UtilizationMonitor.for_system(system, interval_s=0.0001)
    monitor.start()

    def workload():
        for _ in range(8):
            yield from system.devices[0].internal_read([0])

    sim.run(sim.process(workload()))
    monitor.stop()
    assert "read-cache" in monitor.series
    assert monitor.peak("read-cache") > 0.0
    assert "read-cache" in monitor.report()


# -------------------------------------------------------------- coherence
def small_geometry(**overrides):
    """A geometry tiny enough that a modest overwrite workload forces GC."""
    return dict(
        channels=2, dies_per_channel=1, pages_per_block=4, blocks_per_die=4,
        read_cache_bytes=8 * PHYS, **overrides,
    )


def test_gc_relocation_invalidates_and_stays_coherent():
    sim, device = make_device(**small_geometry())
    lpns = list(range(24))

    def churn():
        yield from device.controller.write_pages(lpns)
        for round_no in range(6):
            yield from device.internal_read(lpns)  # populate the cache
            yield from device.controller.write_pages(lpns)  # remap everything

    run(sim, churn())
    assert device.ftl.gc_runs > 0, "workload failed to trigger GC"
    assert device.controller.stats.cache_invalidations > 0
    assert cache_is_coherent(device)
    # Re-reads of relocated pages must sense NAND again, not hit stale lines.
    nand_reads = sum(ch.reads for ch in device.nand.channels)
    hits = device.controller.stats.cache_hits
    run(sim, device.internal_read(lpns))
    assert device.controller.stats.cache_hits == hits
    assert sum(ch.reads for ch in device.nand.channels) > nand_reads


def test_gc_heavy_content_survives_with_cache():
    sim, device = make_device(**small_geometry())
    lpns = list(range(24))
    for lpn in lpns:
        device.store_page(lpn, b"v%d" % lpn)

    def churn():
        for round_no in range(8):
            yield from device.controller.write_pages(lpns)
            yield from device.internal_read(lpns)

    run(sim, churn())
    assert device.ftl.gc_runs > 0
    for lpn in lpns:
        assert device.load_page(lpn).startswith(b"v%d" % lpn)
    assert cache_is_coherent(device)


# ---------------------------------------------------------- fault injection
def test_cached_and_uncached_reads_agree_under_faults():
    """Same workload, same fault plan, cache on vs off: same values, and the
    cached run's recovered/retried reads never corrupt the line."""
    plan = FaultPlan(seed=9, ecc_rate=0.3)
    pages = list(range(32))
    loaded = {}
    for cache_bytes in (0, 64 * PHYS):
        sim, device = make_device(read_retry_limit=4,
                                  read_cache_bytes=cache_bytes)
        for lpn in pages:
            device.store_page(lpn, b"p%d" % lpn)
        device.attach_fault_injector(FaultInjector(plan))

        def workload():
            yield from device.internal_read(pages)
            yield from device.internal_read(pages)

        run(sim, workload())
        assert device.controller.stats.read_retries > 0
        loaded[cache_bytes] = [device.load_page(lpn) for lpn in pages]
        if cache_bytes:
            assert device.controller.stats.cache_hits > 0
            assert cache_is_coherent(device)
    assert loaded[0] == loaded[64 * PHYS]


def test_failed_read_does_not_insert_line():
    sim, device = make_device(read_cache_bytes=64 * PHYS, read_retry_limit=1)
    device.attach_fault_injector(FaultInjector(FaultPlan(seed=5, ecc_rate=1.0)))
    from repro.core.errors import UncorrectableReadError
    with pytest.raises(UncorrectableReadError):
        run(sim, device.internal_read([0]))
    assert len(device.cache) == 0  # only successful senses fill lines
