"""NAND channel timing: sense/transfer pipeline, bus serialization."""

import pytest

from repro.sim.engine import Simulator, all_of
from repro.sim.units import us_to_ns
from repro.ssd.config import SSDConfig
from repro.ssd.nand import Channel, NandArray


def make_channel():
    sim = Simulator()
    config = SSDConfig()
    return sim, config, Channel(sim, config, 0)


def test_single_read_latency_decomposition():
    sim, config, channel = make_channel()
    sim.run(sim.process(channel.read(4096)))
    expected = us_to_ns(config.nand_read_us) + round(4096 / config.channel_bytes_per_sec * 1e9)
    assert sim.now == expected


def test_read_size_bounds():
    sim, config, channel = make_channel()
    with pytest.raises(ValueError):
        next(channel.read(0))
    with pytest.raises(ValueError):
        next(channel.read(config.physical_page_bytes + 1))


def test_dies_pipeline_senses():
    """With 4 dies, four concurrent reads overlap their tR phases."""
    sim, config, channel = make_channel()
    reads = [sim.process(channel.read(config.physical_page_bytes)) for _ in range(4)]
    sim.run(all_of(sim, reads))
    sense = us_to_ns(config.nand_read_us)
    transfer = round(config.physical_page_bytes / config.channel_bytes_per_sec * 1e9)
    # Senses overlap; the four transfers serialize on the one channel bus.
    assert sim.now < 4 * (sense + transfer)
    assert sim.now >= sense + 4 * transfer


def test_fifth_read_waits_for_a_die():
    sim, config, channel = make_channel()
    reads = [sim.process(channel.read(4096)) for _ in range(5)]
    sim.run(all_of(sim, reads))
    # Five reads on four dies: the fifth needs a second sense round.
    assert sim.now > 2 * us_to_ns(config.nand_read_us)


def test_program_timing():
    sim, config, channel = make_channel()
    sim.run(sim.process(channel.program(config.physical_page_bytes)))
    expected = (round(config.physical_page_bytes / config.channel_bytes_per_sec * 1e9)
                + us_to_ns(config.nand_program_us))
    assert sim.now == expected
    assert channel.programs == 1


def test_erase_timing():
    sim, config, channel = make_channel()
    sim.run(sim.process(channel.erase()))
    assert sim.now == us_to_ns(config.nand_erase_us)
    assert channel.erases == 1


def test_counters():
    sim, config, channel = make_channel()
    sim.run(sim.process(channel.read(4096)))
    assert channel.reads == 1
    assert channel.bytes_read == 4096


def test_array_aggregates():
    sim = Simulator()
    config = SSDConfig(channels=4)
    array = NandArray(sim, config)
    assert len(array) == 4
    sim.run(sim.process(array[2].read(4096)))
    assert array.bytes_read == 4096
