"""Host interface model: link cap, queue slots, byte accounting."""

import pytest

from repro.sim.engine import Simulator, all_of
from repro.sim.units import MIB
from repro.ssd.config import SSDConfig
from repro.ssd.nvme import Fabric, HostInterface


def make_interface(**overrides):
    sim = Simulator()
    return sim, HostInterface(sim, SSDConfig(**overrides))


def test_transfer_time_matches_link_rate():
    sim, interface = make_interface()
    sim.run(sim.process(interface.transfer_to_host(32 * MIB)))
    expected = 32 * MIB / 3.2e9
    assert abs(sim.now_s - expected) / expected < 0.001


def test_zero_transfer_free():
    sim, interface = make_interface()
    sim.run(sim.process(interface.transfer_to_host(0)))
    assert sim.now == 0
    assert interface.commands == 0


def test_concurrent_transfers_serialize_on_link():
    sim, interface = make_interface()
    fibers = [sim.process(interface.transfer_to_host(MIB)) for _ in range(4)]
    sim.run(all_of(sim, fibers))
    expected = 4 * MIB / 3.2e9
    assert abs(sim.now_s - expected) / expected < 0.001


def test_direction_accounting():
    sim, interface = make_interface()
    sim.run(sim.process(interface.transfer_to_host(1000)))
    sim.run(sim.process(interface.transfer_to_device(500)))
    assert interface.bytes_to_host == 1000
    assert interface.bytes_to_device == 500
    assert interface.commands == 2


def test_queue_depth_limits_outstanding_commands():
    sim, interface = make_interface(nvme_queue_depth=2)
    held = []

    def holder():
        yield from interface.acquire_slot()
        held.append(sim.now)
        yield sim.timeout(100)
        interface.release_slot()

    fibers = [sim.process(holder()) for _ in range(4)]
    sim.run(all_of(sim, fibers))
    # Third and fourth waited a full slot-hold each.
    assert held == [0, 0, 100, 100]


def test_utilization_reported():
    sim, interface = make_interface()
    sim.run(sim.process(interface.transfer_to_host(MIB)))

    def idle():
        yield sim.timeout(sim.now)  # equal idle period

    sim.run(sim.process(idle()))
    assert 0.4 < interface.utilization() < 0.6


# --------------------------------------------------------------- fabric hops
def test_fabric_transfer_is_cut_through_not_store_and_forward():
    # Equal-rate fabric: the two hops overlap, so one transfer costs one hop
    # (Table II port latencies depend on this — a serialized double charge
    # would roughly double every Conv round trip behind a switch).
    sim = Simulator()
    config = SSDConfig()
    fabric = Fabric(sim, config.pcie_bytes_per_sec)
    interface = HostInterface(sim, config, fabric=fabric)
    sim.run(sim.process(interface.transfer_to_host(32 * MIB)))
    expected = 32 * MIB / config.pcie_bytes_per_sec
    assert abs(sim.now_s - expected) / expected < 0.001


def test_slow_fabric_costs_the_slower_hop():
    sim = Simulator()
    config = SSDConfig()
    fabric = Fabric(sim, config.pcie_bytes_per_sec / 2)
    interface = HostInterface(sim, config, fabric=fabric)
    sim.run(sim.process(interface.transfer_to_host(32 * MIB)))
    expected = 32 * MIB / (config.pcie_bytes_per_sec / 2)  # max, not sum
    assert abs(sim.now_s - expected) / expected < 0.001


def test_fabric_still_serializes_competing_devices():
    sim = Simulator()
    config = SSDConfig()
    fabric = Fabric(sim, config.pcie_bytes_per_sec)
    first = HostInterface(sim, config, fabric=fabric)
    second = HostInterface(sim, config, fabric=fabric)
    fibers = [
        sim.process(first.transfer_to_host(32 * MIB)),
        sim.process(second.transfer_to_host(32 * MIB)),
    ]
    sim.run(all_of(sim, fibers))
    # Two devices' worth of bytes through one switch: 2x one hop.
    expected = 2 * 32 * MIB / config.pcie_bytes_per_sec
    assert abs(sim.now_s - expected) / expected < 0.001
    assert fabric.bytes_moved == 2 * 32 * MIB
