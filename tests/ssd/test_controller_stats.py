"""Controller accounting: byte counters, duplicate collapse, pre-dispatch
charging, and stripe-coalescing bookkeeping."""

import pytest

from repro.core.errors import UncorrectableReadError
from repro.sim.engine import Simulator
from repro.ssd.config import SSDConfig
from repro.ssd.device import SSDDevice
from repro.testing.faults import FaultInjector, FaultPlan


def make_device(**overrides):
    sim = Simulator()
    return sim, SSDDevice(sim, SSDConfig(**overrides))


def run(sim, fiber):
    start = sim.now
    sim.run(sim.process(fiber))
    return (sim.now - start) / 1e3  # microseconds


# ------------------------------------------------------------- byte counters
def test_bytes_read_counts_bytes_not_pages():
    sim, device = make_device()
    run(sim, device.internal_read([0, 1, 2]))
    stats = device.controller.stats
    assert stats.logical_pages_read == 3
    assert stats.bytes_read == 3 * device.config.logical_page_bytes


def test_bytes_written_counts_bytes_not_pages():
    sim, device = make_device()
    run(sim, device.internal_write(list(range(8))))
    stats = device.controller.stats
    assert stats.logical_pages_written == 8
    assert stats.bytes_written == 8 * device.config.logical_page_bytes


def test_bytes_read_tracks_configured_page_size():
    sim, device = make_device(logical_page_bytes=2048,
                              physical_page_bytes=8192)
    run(sim, device.internal_read([0]))
    assert device.controller.stats.bytes_read == 2048


# --------------------------------------------------------- duplicate collapse
def test_duplicate_lpns_collapse_to_one_slot():
    sim, device = make_device()
    run(sim, device.internal_read([5, 5, 5]))
    stats = device.controller.stats
    assert stats.read_commands == 1
    assert stats.logical_pages_read == 1  # the page is sensed once
    # The NAND transfer is one logical page, not three.
    total = sum(ch.bytes_read for ch in device.nand.channels)
    assert total == device.config.logical_page_bytes


def test_duplicates_mixed_with_distinct_pages():
    sim, device = make_device()
    run(sim, device.internal_read([0, 1, 0, 2, 1]))
    assert device.controller.stats.logical_pages_read == 3


# ------------------------------------------------------ pre-dispatch charging
def test_failed_read_is_still_counted():
    sim, device = make_device(read_retry_limit=1)
    device.attach_fault_injector(FaultInjector(FaultPlan(seed=5, ecc_rate=1.0)))
    with pytest.raises(UncorrectableReadError):
        run(sim, device.internal_read([0, 1, 2, 3]))
    stats = device.controller.stats
    assert stats.read_commands == 1  # visible even though the command died
    assert stats.logical_pages_read == 4
    assert stats.unrecoverable_reads >= 1


def test_failed_write_is_still_counted():
    # Geometry so small every block is needed: GC cannot reclaim anything
    # once all pages are live, so the write path dies mid-command.
    sim, device = make_device(channels=1, dies_per_channel=1,
                              pages_per_block=2, blocks_per_die=2)
    from repro.core.errors import OutOfSpaceError
    with pytest.raises(OutOfSpaceError):
        run(sim, device.internal_write(list(range(64))))
    stats = device.controller.stats
    assert stats.write_commands == 1
    assert stats.logical_pages_written == 64


# ------------------------------------------------------------ coalescing
def test_adjacent_stripes_coalesce():
    sim, device = make_device()
    run(sim, device.internal_read(list(range(256))))  # 64 contiguous stripes
    stats = device.controller.stats
    assert stats.coalesced_commands > 0
    assert stats.coalesced_stripes > 0


def test_coalesce_limit_one_disables_merging():
    sim, device = make_device(read_coalesce_limit=1)
    run(sim, device.internal_read(list(range(256))))
    stats = device.controller.stats
    assert stats.coalesced_commands == 0
    assert stats.coalesced_stripes == 0


def test_coalescing_amortizes_dispatch_cpu():
    # A big streaming read is channel-bound either way; what coalescing buys
    # is device-core headroom — one STRIPE_DISPATCH_US per run instead of
    # per stripe.  Compare core busy time, which is deterministic.
    sim_merge, merged = make_device()
    sim_solo, solo = make_device(read_coalesce_limit=1)
    pages = list(range(512))
    run(sim_merge, merged.internal_read(pages))
    run(sim_solo, solo.internal_read(pages))
    assert merged.cores.busy_area() < solo.cores.busy_area()


def test_matcher_reads_never_coalesce():
    sim, device = make_device()
    run(sim, device.internal_read(list(range(256)), use_matcher=True))
    stats = device.controller.stats
    assert stats.matcher_commands == 1
    assert stats.coalesced_commands == 0  # the IP is reprogrammed per stripe


def test_scattered_reads_do_not_coalesce():
    sim, device = make_device()
    # Stride far past the adjacency window: every stripe is its own command.
    pages = [lpn * 64 * device.config.logical_pages_per_physical
             for lpn in range(16)]
    run(sim, device.internal_read(pages))
    assert device.controller.stats.coalesced_commands == 0
