"""Pattern matcher IP: key limits, exact matching, analytic determinism."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ssd.config import SSDConfig
from repro.ssd.pattern_matcher import KeyError16, MatchResult, PatternMatcher


def matcher():
    return PatternMatcher(SSDConfig(), channel_index=0)


# ---------------------------------------------------------------- key limits
def test_at_most_three_keys():
    with pytest.raises(KeyError16):
        matcher().validate_keys([b"a", b"b", b"c", b"d"])


def test_key_length_limit_16_bytes():
    matcher().validate_keys([b"x" * 16])  # exactly at the limit
    with pytest.raises(KeyError16):
        matcher().validate_keys([b"x" * 17])


def test_empty_key_rejected():
    with pytest.raises(KeyError16):
        matcher().validate_keys([b""])


def test_no_keys_rejected():
    with pytest.raises(KeyError16):
        matcher().validate_keys([])


def test_non_bytes_key_rejected():
    with pytest.raises(KeyError16):
        matcher().validate_keys(["string"])


# ---------------------------------------------------------------- exact mode
def test_exact_counts_occurrences():
    result = matcher().match_bytes(0, b"xx NEEDLE yy NEEDLE zz", [b"NEEDLE"])
    assert result.matched
    assert result.count(b"NEEDLE") == 2
    assert result.total_hits == 2


def test_exact_miss():
    result = matcher().match_bytes(3, b"nothing here", [b"NEEDLE"])
    assert not result.matched
    assert result.total_hits == 0
    assert result.page_index == 3


def test_exact_multiple_keys_or_semantics():
    result = matcher().match_bytes(0, b"alpha beta", [b"beta", b"gamma"])
    assert result.matched
    assert result.count(b"beta") == 1
    assert result.count(b"gamma") == 0


def test_exact_overlapping_occurrences():
    # bytes.count is non-overlapping — matches real scanners.
    result = matcher().match_bytes(0, b"aaaa", [b"aa"])
    assert result.count(b"aa") == 2


def test_scan_statistics():
    m = matcher()
    m.match_bytes(0, b"NEEDLE", [b"NEEDLE"])
    m.match_bytes(1, b"nope", [b"NEEDLE"])
    assert m.pages_scanned == 2
    assert m.pages_matched == 1


# ------------------------------------------------------------- analytic mode
def test_analytic_deterministic():
    m1, m2 = matcher(), matcher()
    results_1 = [m1.match_page_analytic(i, [b"k"], {b"k": 0.3}, seed=9).matched
                 for i in range(200)]
    results_2 = [m2.match_page_analytic(i, [b"k"], {b"k": 0.3}, seed=9).matched
                 for i in range(200)]
    assert results_1 == results_2


def test_analytic_rate_tracks_probability():
    m = matcher()
    hits = sum(
        m.match_page_analytic(i, [b"k"], {b"k": 0.25}, seed=1).matched
        for i in range(2000)
    )
    assert 0.20 < hits / 2000 < 0.30


def test_analytic_zero_and_one():
    m = matcher()
    assert not m.match_page_analytic(0, [b"k"], {b"k": 0.0}).matched
    assert m.match_page_analytic(0, [b"k"], {b"k": 1.0}).matched


def test_analytic_unknown_key_never_matches():
    m = matcher()
    assert not m.match_page_analytic(0, [b"k"], {}).matched


@settings(max_examples=30, deadline=None)
@given(
    page=st.integers(0, 10_000),
    low=st.floats(0.0, 0.5),
    delta=st.floats(0.0, 0.5),
)
def test_property_analytic_monotone_in_probability(page, low, delta):
    """If a page matches at probability p, it matches at any p' >= p."""
    m = matcher()
    high = min(1.0, low + delta)
    at_low = m.match_page_analytic(page, [b"k"], {b"k": low}, seed=4).matched
    at_high = m.match_page_analytic(page, [b"k"], {b"k": high}, seed=4).matched
    if at_low:
        assert at_high
