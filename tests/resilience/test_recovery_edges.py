"""Recovery edge cases, pinned with scripted (not rate-based) faults.

Each test builds the same tiny replicated table on a two-device system and
drives one resilient scan while a :class:`ScriptedInjector` fires faults at
exact read-attempt ordinals:

* a device **crash after a checkpoint commit but before the final ack** —
  the retry must resume from the committed page, not page zero, and the
  result must still be exactly-once;
* a **double fault**: the primary dies, and the replica dies again during
  the failover attempt — the driver must keep alternating until a copy
  answers;
* a **replica fault during a hedge** — the backup leg crashes while the
  primary is still running; the primary's eventual answer must win;
* a **stalled primary losing a hedge** — the replica answers first and the
  primary leg is interrupted mid-I/O (the grant-window reclaim fix keeps
  its channel/die units from leaking).

Every outcome is compared row-for-row against a fault-free run of the same
scan, so none of these recoveries may lose or duplicate rows.
"""

from repro.db.catalog import Column, TableSchema
from repro.db.storage import Database
from repro.host.platform import System
from repro.resilience import (
    HedgePolicy,
    RecoveryTracker,
    ResilientScanDriver,
    RetryPolicy,
    ScanSpec,
)
from repro.sim.units import us_to_ns
from repro.testing.faults import Fault, ScriptedInjector

SCHEMA = TableSchema("edge", [Column("k", "int"), Column("v", "int")])
ROWS = [(i, (i * 7) % 31) for i in range(8000)]


def _predicate(row):
    return row[1] % 3 == 0


def _run_scan(script0=None, script1=None, policy=None, hedge=None):
    """One resilient scan of the shared table under the given fault scripts.

    Returns ``(rows, driver, injectors)``; the table (and predicate) are
    identical across calls so results are directly comparable.
    """
    system = System(num_ssds=2)
    databases = []
    for fs in system.filesystems:
        db = Database(fs)
        db.load_table(SCHEMA, ROWS)
        databases.append(db)
    storage = databases[0].table(SCHEMA.name)
    injectors = (ScriptedInjector(script0 or {}),
                 ScriptedInjector(script1 or {}))
    system.devices[0].attach_fault_injector(injectors[0])
    system.devices[1].attach_fault_injector(injectors[1])
    driver = ResilientScanDriver(
        system,
        policy=policy or RetryPolicy(checkpoint_pages=1),
        hedge=hedge,
        recovery=RecoveryTracker(system.sim),
    )
    spec = ScanSpec(
        path=storage.path,
        page_rows=lambda page_no: databases[0].read_page_rows(storage, page_no),
        prefilter=_predicate,
        predicate=_predicate,
        out_idx=[0, 1],
        page_size=storage.page_size,
        num_pages=storage.num_pages,
        workers=2,
    )
    rows = system.run_fiber(driver.scan(spec, primary=0), name="edge-scan")
    return rows, driver, injectors


def _clean_reference():
    """Fault-free run: the rows every recovery below must reproduce, and
    the read-attempt count the crash scripts are positioned against."""
    rows, _driver, injectors = _run_scan()
    return rows, injectors[0].reads_seen


def test_crash_between_checkpoint_and_ack_resumes_not_restarts():
    expected, total_reads = _clean_reference()
    assert total_reads > 10  # the script below needs room mid-scan
    # Crash the primary most of the way through the scan: several chunk
    # markers have committed, the final ack has not.  No failover — the
    # retry must resume on the *same* device from the committed page.
    crash_at = int(total_reads * 0.7)
    rows, driver, injectors = _run_scan(
        script0={crash_at: Fault("crash")},
        policy=RetryPolicy(checkpoint_pages=1, failover=False),
    )
    assert injectors[0].faults_injected == 1
    assert driver.stats.crashes_seen == 1
    assert driver.stats.retries == 1
    assert driver.stats.resumes >= 1  # restarted past page 0
    assert driver.stats.failovers == 0
    # Exactly-once despite the mid-stream death: committed pages were not
    # re-emitted, uncommitted pages were not lost.
    assert rows == expected
    # The resumed attempt re-read strictly less than a full second scan.
    assert injectors[0].reads_seen < 2 * total_reads


def test_double_fault_during_failover_keeps_alternating():
    expected, _ = _clean_reference()
    # Primary dies at its first read; the failover attempt on the replica
    # dies too; the second failover back to the (now scripted-clean)
    # primary may hit one more scripted crash before converging.
    rows, driver, injectors = _run_scan(
        script0={0: Fault("crash"), 1: Fault("crash")},
        script1={0: Fault("crash")},
    )
    assert rows == expected
    assert driver.stats.device_errors >= 2
    assert driver.stats.failovers >= 2  # left the primary AND the replica
    assert driver.recovery.faults_noted >= 2
    assert injectors[0].faults_injected >= 1
    assert injectors[1].faults_injected >= 1


def test_replica_fault_during_hedge_falls_back_to_primary():
    expected, _ = _clean_reference()
    # A tiny deadline fires the hedge immediately; the replica leg crashes
    # on every read it attempts, so the still-running primary must win.
    hedge = HedgePolicy(default_us=5.0, floor_us=1.0)
    rows, driver, injectors = _run_scan(
        script1={ordinal: Fault("crash") for ordinal in range(200)},
        hedge=hedge,
    )
    assert rows == expected
    assert hedge.hedges_fired >= 1
    assert hedge.primary_wins >= 1
    assert hedge.hedge_wins == 0
    assert driver.stats.crashes_seen >= 1  # the dead backup leg was seen
    assert injectors[1].faults_injected >= 1


def test_stalled_primary_loses_hedge_and_is_interrupted_mid_io():
    expected, _ = _clean_reference()
    # Every primary read stalls for 20ms; the hedge fires at ~5us and the
    # clean replica answers first.  The losing primary leg is interrupted
    # while its reads are in flight — the reclaim path must hand its
    # channel/die grants back without leaking or crashing the sim.
    stall = Fault("stall", us_to_ns(20000.0))
    hedge = HedgePolicy(default_us=5.0, floor_us=1.0)
    rows, driver, injectors = _run_scan(
        script0={ordinal: stall for ordinal in range(500)},
        hedge=hedge,
    )
    assert rows == expected
    assert hedge.hedges_fired >= 1
    assert hedge.hedge_wins >= 1
    assert driver.stats.gave_up == 0
    assert injectors[0].faults_injected >= 1  # the primary really stalled
