"""The checkpoint ledger: exactly-once row accounting across retries."""

import pytest

from repro.resilience.checkpoint import RangeCheckpoint, ScanCheckpoint


# ------------------------------------------------------------ range ledger
def test_stage_is_invisible_until_committed():
    ledger = RangeCheckpoint(0, 8)
    ledger.stage([(1,), (2,)])
    assert ledger.rows == []
    assert ledger.committed_page == 0
    ledger.commit(4)
    assert ledger.rows == [(1,), (2,)]
    assert ledger.committed_page == 4
    assert not ledger.done


def test_abort_drops_only_staged_rows():
    ledger = RangeCheckpoint(0, 8)
    ledger.stage([(1,)])
    ledger.commit(4)
    ledger.stage([(2,), (3,)])  # uncommitted when the attempt dies
    assert ledger.abort() == 2
    assert ledger.rows == [(1,)]
    assert ledger.committed_page == 4  # resume point survives the abort


def test_marker_cannot_move_backwards_or_past_the_range():
    ledger = RangeCheckpoint(2, 6)
    ledger.commit(4)
    with pytest.raises(ValueError):
        ledger.commit(3)  # backwards
    with pytest.raises(ValueError):
        ledger.commit(7)  # past end_page
    ledger.commit(6)
    assert ledger.done


def test_inverted_range_rejected():
    with pytest.raises(ValueError):
        RangeCheckpoint(5, 4)


def test_clone_is_independent():
    ledger = RangeCheckpoint(0, 8)
    ledger.stage([(1,)])
    ledger.commit(2)
    twin = ledger.clone()
    twin.stage([(2,)])
    twin.commit(8)
    # Staged rows are attempt-local: a clone starts with an empty stage.
    assert ledger.rows == [(1,)]
    assert ledger.committed_page == 2
    assert twin.rows == [(1,), (2,)]
    assert twin.done


# ------------------------------------------------------------- scan ledger
def test_for_pages_covers_every_page_exactly_once():
    for num_pages in (1, 2, 7, 8, 64):
        for workers in (1, 2, 3, 8):
            ckpt = ScanCheckpoint.for_pages(num_pages, workers)
            covered = []
            for r in ckpt.ranges:
                covered.extend(range(r.first_page, r.end_page))
            assert covered == list(range(num_pages)), (num_pages, workers)


def test_for_pages_never_exceeds_pages_or_drops_workers_to_zero():
    ckpt = ScanCheckpoint.for_pages(3, 8)
    assert len(ckpt.ranges) <= 3
    ckpt = ScanCheckpoint.for_pages(5, 0)
    assert len(ckpt.ranges) == 1


def test_pending_and_done_track_commits():
    ckpt = ScanCheckpoint.for_pages(8, 2)
    assert ckpt.pending() == [0, 1]
    ckpt.stage(0, [(1,)])
    ckpt.commit(0, ckpt.ranges[0].end_page)
    assert ckpt.pending() == [1]
    assert not ckpt.done
    ckpt.commit(1, ckpt.ranges[1].end_page)
    assert ckpt.done
    assert ckpt.commits == 2
    assert ckpt.collect() == [(1,)]


def test_collect_is_range_major():
    ckpt = ScanCheckpoint([(0, 2), (2, 4)])
    ckpt.stage(1, [("late",)])
    ckpt.commit(1, 4)
    ckpt.stage(0, [("early",)])
    ckpt.commit(0, 2)
    # Commit order does not matter: rows come back in range order.
    assert ckpt.collect() == [("early",), ("late",)]


def test_adopt_replaces_state_with_the_winning_clone():
    base = ScanCheckpoint.for_pages(8, 2)
    winner = base.clone()
    winner.stage(0, [(1,)])
    winner.commit(0, winner.ranges[0].end_page)
    loser = base.clone()
    loser.stage(0, [("wrong",)])
    base.adopt(winner)
    assert base.collect() == [(1,)]
    assert base.commits == 1
    # The losing clone's staged rows never reach the adopted ledger.
    loser.abort()
    assert base.collect() == [(1,)]


def test_abort_counts_dropped_rows_across_ranges():
    ckpt = ScanCheckpoint([(0, 2), (2, 4)])
    ckpt.stage(0, [(1,), (2,)])
    ckpt.stage(1, [(3,)])
    ckpt.abort()
    assert ckpt.aborted_rows == 3
    assert ckpt.collect() == []
