"""Fleet loading, liveness bookkeeping, and the hash-partition skew bound."""

from repro.cluster import ShardedFleet, shard_table_name
from repro.db.catalog import Column, TableSchema
from repro.db.tpch.datagen import generate_tables
from repro.db.tpch.schema import TPCH_SCHEMAS


def _schema():
    return TableSchema("t", [Column("id", "int"), Column("v", "int")])


def _rows(n=200):
    return [(i, i % 7) for i in range(n)]


def test_load_sharded_installs_every_copy():
    fleet = ShardedFleet(num_nodes=3, num_shards=3, replication=2)
    spec = fleet.load_sharded(_schema(), _rows(), key="id", kind="hash")

    assert spec.num_shards == 3
    for shard in range(3):
        name = shard_table_name("t", shard)
        holders = fleet.replica_map.nodes_for(shard)
        assert len(holders) == 2
        copies = []
        for node_index in holders:
            storage = fleet.databases[node_index].tables[name]
            copies.append(storage.num_rows)
        assert copies[0] == copies[1]  # both replicas hold the full shard
    # Every row landed in exactly one shard.
    assert sum(fleet.shard_row_counts("t")) == 200
    # The logical name resolves on every copy-holding node (for compile).
    for node_index in range(3):
        assert "t" in fleet.databases[node_index].tables


def test_crash_and_recover_bookkeeping():
    fleet = ShardedFleet(num_nodes=4, num_shards=8, replication=2)
    fleet.load_sharded(_schema(), _rows(), key="id")
    fleet.crash_node(2)
    fleet.crash_node(2)  # idempotent
    assert fleet.crashes == 1
    assert fleet.catalog.is_down(2)
    assert all(2 not in fleet.catalog.nodes_for(s) for s in range(8))
    # Shard row counts still answer from the surviving replicas.
    assert sum(fleet.shard_row_counts("t")) == 200

    fleet.recover_node(2)
    assert fleet.recoveries == 1
    assert not fleet.catalog.is_down(2)
    assert any(2 in fleet.catalog.nodes_for(s) for s in range(8))


def test_lineitem_hash_partition_skew_within_bound():
    """Hash partitioning must spread TPC-H lineitem within 1.2x of ideal."""
    rows = generate_tables(0.002)["lineitem"]
    schema = TPCH_SCHEMAS["lineitem"]
    assert len(rows) > 5000

    fleet = ShardedFleet(num_nodes=4, num_shards=8, replication=2)
    fleet.load_sharded(schema, rows, key="l_orderkey", kind="hash")
    counts = fleet.shard_row_counts("lineitem")
    assert sum(counts) == len(rows)
    ideal = len(rows) / fleet.num_shards
    assert max(counts) <= 1.2 * ideal, counts
    assert min(counts) >= 0.8 * ideal, counts
