"""Shard catalog unit coverage: routing, pruning, liveness, validation."""

import pytest

from repro.cluster.catalog import (
    PartitionSpec,
    ShardCatalog,
    ShardUnavailableError,
    shard_table_name,
    stable_shard_hash,
)
from repro.net.cluster import ReplicaMap


# ----------------------------------------------------------- partition specs
def test_hash_shard_of_is_stable_and_in_range():
    spec = PartitionSpec("t", "k", "hash", 8)
    for value in [0, 1, 17, -3, "alpha", b"raw", 2.5, ("a", 1)]:
        shard = spec.shard_of(value)
        assert 0 <= shard < 8
        assert shard == spec.shard_of(value)  # deterministic
        assert shard == stable_shard_hash(value) % 8


def test_range_shard_of_respects_bounds():
    spec = PartitionSpec("t", "k", "range", 4, bounds=(10, 20, 30))
    assert spec.shard_of(-5) == 0
    assert spec.shard_of(9) == 0
    assert spec.shard_of(10) == 1  # bound value goes right
    assert spec.shard_of(19) == 1
    assert spec.shard_of(25) == 2
    assert spec.shard_of(30) == 3
    assert spec.shard_of(1000) == 3


def test_spec_validation():
    with pytest.raises(ValueError):
        PartitionSpec("t", "k", "modulo", 4)
    with pytest.raises(ValueError):
        PartitionSpec("t", "k", "range", 4, bounds=(1, 2))  # needs 3
    with pytest.raises(ValueError):
        PartitionSpec("t", "k", "range", 4, bounds=(3, 2, 1))  # unsorted
    with pytest.raises(ValueError):
        PartitionSpec("t", "k", "hash", 4, bounds=(1, 2, 3))


def test_target_shards_eq_prunes_under_both_kinds():
    hashed = PartitionSpec("t", "k", "hash", 8)
    ranged = PartitionSpec("t", "k", "range", 4, bounds=(10, 20, 30))
    for spec in (hashed, ranged):
        targets = spec.target_shards(("eq", [15]))
        assert targets == [spec.shard_of(15)]
    # IN-lists visit exactly the owning shards, sorted and deduplicated.
    targets = hashed.target_shards(("eq", [1, 2, 3, 1]))
    assert targets == sorted(set(hashed.shard_of(v) for v in (1, 2, 3)))


def test_target_shards_range_prunes_only_under_range_kind():
    ranged = PartitionSpec("t", "k", "range", 4, bounds=(10, 20, 30))
    assert ranged.target_shards(("range", (12, 22, True, True))) == [1, 2]
    assert ranged.target_shards(("range", (None, 9, False, True))) == [0]
    assert ranged.target_shards(("range", (35, None, True, False))) == [3]
    # Hash partitioning destroys order: a range must scan everything.
    hashed = PartitionSpec("t", "k", "hash", 4)
    assert hashed.target_shards(("range", (12, 22, True, True))) == [0, 1, 2, 3]
    # No constraint scans everything under either kind.
    assert ranged.target_shards(None) == [0, 1, 2, 3]


def test_partition_rows_covers_every_row_exactly_once():
    spec = PartitionSpec("t", "k", "hash", 4)
    rows = [(i, i * 2) for i in range(100)]
    parts = spec.partition_rows(rows, 0)
    assert sum(len(p) for p in parts) == 100
    assert sorted(row for part in parts for row in part) == rows
    for shard, part in enumerate(parts):
        assert all(spec.shard_of(row[0]) == shard for row in part)


def test_shard_table_name():
    assert shard_table_name("lineitem", 3) == "lineitem#s3"


# ------------------------------------------------------------------- catalog
def _catalog(num_shards=4, num_nodes=4, replication=2):
    return ShardCatalog(ReplicaMap(num_shards, num_nodes, replication))


def test_register_rejects_shard_count_mismatch():
    catalog = _catalog(num_shards=4)
    with pytest.raises(ValueError):
        catalog.register(PartitionSpec("t", "k", "hash", 8))
    spec = catalog.register(PartitionSpec("t", "k", "hash", 4))
    assert catalog.spec("t") is spec
    assert catalog.is_sharded("t") and not catalog.is_sharded("other")
    with pytest.raises(KeyError):
        catalog.spec("other")


def test_nodes_for_filters_down_nodes_primary_first():
    catalog = _catalog()
    placement = catalog.replica_map.nodes_for(0)
    assert catalog.nodes_for(0) == placement
    assert catalog.primary_for(0) == placement[0]

    catalog.mark_down(placement[0])
    assert catalog.nodes_for(0) == placement[1:]
    assert catalog.primary_for(0) == placement[1]  # replica promoted
    # The raw placement is immutable — include_down still shows the primary.
    assert catalog.nodes_for(0, include_down=True) == placement

    catalog.mark_up(placement[0])
    assert catalog.primary_for(0) == placement[0]  # old role resumed


def test_all_copies_down_raises_shard_unavailable():
    catalog = _catalog()
    placement = catalog.replica_map.nodes_for(1)
    for node in placement:
        catalog.mark_down(node)
    assert catalog.down_nodes == tuple(sorted(placement))
    with pytest.raises(ShardUnavailableError):
        catalog.nodes_for(1)


def test_placement_covers_every_shard_with_replication():
    catalog = _catalog(num_shards=8, num_nodes=4, replication=2)
    placement = catalog.placement()
    assert sorted(placement) == list(range(8))
    for nodes in placement.values():
        assert len(nodes) == 2
        assert len(set(nodes)) == 2  # copies on distinct nodes
