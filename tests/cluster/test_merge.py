"""Coordinator merge operators: ordered k-way merge + aggregate-state fold."""

from repro.cluster.executor import ClusterExecutor, _row_less
from repro.db.executor import (
    Rel,
    aggregate_rows,
    finalize_agg_rel,
    merge_agg_states,
    plan_device_aggs,
    update_agg_states,
)
from repro.db.expr import col
from repro.testing.differential import rows_match

_merge = ClusterExecutor._ordered_merge


# --------------------------------------------------------------- k-way merge
def test_ordered_merge_interleaves_sorted_runs():
    runs = [[(1,), (4,), (7,)], [(2,), (5,)], [(0,), (9,)]]
    assert _merge(runs, [(0, False)], None) == [
        (0,), (1,), (2,), (4,), (5,), (7,), (9,)]


def test_ordered_merge_descending_and_limit():
    runs = [[(9,), (3,)], [(8,), (5,), (1,)]]
    assert _merge(runs, [(0, True)], 3) == [(9,), (8,), (5,)]


def test_ordered_merge_ties_break_to_lowest_shard_index():
    # Equal keys: shard 0's row must come out before shard 1's, every time.
    runs = [[(5, "s0")], [(5, "s1"), (5, "s1b")]]
    assert _merge(runs, [(0, False)], None) == [
        (5, "s0"), (5, "s1"), (5, "s1b")]
    # ...and the mirror order of runs flips the winner with it (the tie
    # break is positional, not value-dependent).
    assert _merge(list(reversed(runs)), [(0, False)], None) == [
        (5, "s1"), (5, "s1b"), (5, "s0")]


def test_ordered_merge_secondary_key():
    runs = [[(1, 9), (2, 1)], [(1, 3), (2, 5)]]
    assert _merge(runs, [(0, False), (1, True)], None) == [
        (1, 9), (1, 3), (2, 5), (2, 1)]


def test_row_less_is_strict():
    assert not _row_less((1, 2), (1, 2), [(0, False), (1, False)])
    assert _row_less((1, 1), (1, 2), [(0, False), (1, False)])
    assert _row_less((1, 2), (1, 1), [(0, False), (1, True)])


def test_ordered_merge_empty_runs():
    assert _merge([[], [], []], [(0, False)], None) == []
    assert _merge([[], [(1,)]], [(0, False)], None) == [(1,)]


# ------------------------------------------------------- aggregate-state fold
def _rows():
    # (g, v): two groups, deterministic values.
    return [("a", 1.0), ("b", 10.0), ("a", 3.0), ("b", 20.0), ("a", 5.0)]


AGGS = [
    ("s", "sum", col("v")),
    ("c", "count", None),
    ("lo", "min", col("v")),
    ("hi", "max", col("v")),
    ("mean", "avg", col("v")),
]


def test_sharded_fold_equals_single_pass():
    columns = ["g", "v"]
    rows = _rows()
    positions = {name: i for i, name in enumerate(columns)}
    device_aggs, layout, kinds = plan_device_aggs(AGGS, positions)

    # Partition the rows three ways (one part empty), fold each part into
    # device-format states, merge, finalize...
    parts = [rows[0:2], rows[2:5], []]
    totals: dict = {}
    for part in parts:
        partial = update_agg_states({}, part, [0], device_aggs)
        merge_agg_states(totals, partial, kinds)
    merged = finalize_agg_rel(totals, layout, device_aggs, ["g"], AGGS)

    # ...and the result must match the pure single-pass aggregation.
    single = aggregate_rows(Rel(columns, rows), ["g"], AGGS)
    assert merged.columns == single.columns
    assert rows_match(merged.rows, single.rows)
    assert rows_match(merged.rows, [
        ("a", 9.0, 3, 1.0, 5.0, 3.0),
        ("b", 30.0, 2, 10.0, 20.0, 15.0),
    ])


def test_merge_is_order_insensitive():
    columns = ["g", "v"]
    rows = _rows()
    positions = {name: i for i, name in enumerate(columns)}
    device_aggs, layout, kinds = plan_device_aggs(AGGS, positions)
    partials = [update_agg_states({}, part, [0], device_aggs)
                for part in (rows[0:1], rows[1:4], rows[4:5])]

    forward: dict = {}
    for partial in partials:
        merge_agg_states(forward, partial, kinds)
    backward: dict = {}
    for partial in reversed(partials):
        merge_agg_states(backward, partial, kinds)
    a = finalize_agg_rel(forward, layout, device_aggs, ["g"], AGGS)
    b = finalize_agg_rel(backward, layout, device_aggs, ["g"], AGGS)
    assert rows_match(a.rows, b.rows)


def test_empty_group_count_finalizes_to_zero():
    device_aggs, layout, kinds = plan_device_aggs(
        [("c", "count", None)], {"v": 0})
    totals = {("k",): [None]}  # a group seen by zero matching rows
    rel = finalize_agg_rel(totals, layout, device_aggs, ["g"],
                           [("c", "count", None)])
    assert rel.rows == [("k", 0)]
