"""Scatter-gather executor: end-to-end SQL, pruning, crash-mid-scatter."""

import pytest

from repro.cluster import (
    ClusterExecutor,
    ShardedFleet,
    ShardUnavailableError,
)
from repro.db.catalog import Column, TableSchema
from repro.db.executor import TableRef
from repro.sim.engine import all_of


def _schema():
    return TableSchema("t", [Column("id", "int"), Column("v", "int")])


def _rows(n=6000):
    return [(i, (i * 37) % 101) for i in range(n)]


def _fleet(num_nodes=3, num_shards=3):
    fleet = ShardedFleet(num_nodes=num_nodes, num_shards=num_shards,
                         replication=2)
    fleet.load_sharded(_schema(), _rows(), key="id", kind="hash")
    return fleet


def test_run_sql_group_by_matches_reference():
    fleet = _fleet()
    executor = ClusterExecutor(fleet)
    rel, elapsed_s = executor.run_sql(
        "SELECT v, sum(id) AS s, count(*) AS n FROM t GROUP BY v")
    expected = {}
    for i, v in _rows():
        total, count = expected.get(v, (0, 0))
        expected[v] = (total + i, count + 1)
    got = {row[0]: (row[1], row[2]) for row in rel.rows}
    assert got == expected
    assert elapsed_s > 0
    assert executor.max_fan_out == 3


def test_point_lookup_prunes_to_one_shard():
    fleet = _fleet()
    executor = ClusterExecutor(fleet)
    rel = fleet.run_fiber(executor.point_lookup("t", 17), name="lookup")
    assert rel.rows == [(17, (17 * 37) % 101)]
    assert executor.point_lookups == 1
    assert executor.shard_rpcs == 1  # exactly one shard was consulted


def test_crash_mid_scatter_fails_over_and_stays_correct():
    """The scripted edge case: a primary dies while its scan is in flight.

    The scatter is already running when the node goes dark — in-flight
    NAND work on it dies with DeviceCrashedError (not a clean cutover) and
    the executor must re-issue that shard's scan on the surviving replica,
    returning exactly the full-table answer.  The table is padded so each
    shard's scan spans many pages: the crash provably lands mid-scan (the
    crash injector must report killed reads, not a dispatch-time skip).
    """
    schema = TableSchema("t", [Column("id", "int"), Column("v", "int"),
                               Column("pad", "str")])
    rows = [(i, (i * 37) % 101, "x" * 120) for i in range(30000)]
    fleet = ShardedFleet(num_nodes=3, num_shards=3, replication=2)
    fleet.load_sharded(schema, rows, key="id", kind="hash")
    executor = ClusterExecutor(fleet)
    victim = fleet.catalog.primary_for(0)
    sim = fleet.sim

    def scenario():
        proc = sim.process(
            executor.scatter_fetch(TableRef("t")), name="scatter")
        yield sim.timeout(400_000)  # 400 us: every shard scan is mid-flight
        assert proc.is_alive  # the scatter really is still running
        fleet.crash_node(victim)
        yield all_of(sim, [proc])
        return proc.value

    rel = fleet.run_fiber(scenario(), name="crash-scenario")
    assert sorted(rel.rows) == sorted(rows)
    assert executor.failovers >= 1
    assert fleet.crashes == 1
    # The crash really interrupted NAND work (in-flight death, not a
    # clean routing cutover before the scan started).
    killed = sum(injector.crashes_injected
                 for injector in fleet._crash_injectors[victim])
    assert killed > 0


def test_every_copy_down_raises_shard_unavailable():
    fleet = _fleet()
    executor = ClusterExecutor(fleet)
    for node in fleet.replica_map.nodes_for(0):
        fleet.crash_node(node)
    with pytest.raises(ShardUnavailableError):
        fleet.run_fiber(executor.scatter_fetch(TableRef("t")), name="dead")
