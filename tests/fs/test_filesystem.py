"""Filesystem: namespace, extents, synthetic files, content assembly."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fs.filesystem import FsError
from repro.host.platform import System


def test_install_and_lookup(system):
    inode = system.fs.install("/a.txt", b"hello world")
    assert system.fs.exists("/a.txt")
    assert system.fs.lookup("/a.txt") is inode
    assert inode.size == 11
    assert inode.num_pages == 1


def test_lookup_missing_raises(system):
    with pytest.raises(FsError):
        system.fs.lookup("/missing")


def test_duplicate_create_rejected(system):
    system.fs.install("/dup", b"x")
    with pytest.raises(FsError):
        system.fs.install("/dup", b"y")


def test_listdir_sorted(system):
    for name in ("/b", "/a", "/c"):
        system.fs.install(name, b"")
    assert system.fs.listdir() == ["/a", "/b", "/c"]


def test_multi_page_content_roundtrip(system):
    payload = bytes(range(256)) * 64  # 16 KiB = 4 pages
    inode = system.fs.install("/big", payload)
    assert inode.num_pages == 4
    assert system.fs.read_range(inode, 0, len(payload)) == payload


def test_read_range_subsets(system):
    payload = b"0123456789" * 1000
    inode = system.fs.install("/r", payload)
    assert system.fs.read_range(inode, 0, 10) == payload[:10]
    assert system.fs.read_range(inode, 4090, 20) == payload[4090:4110]
    assert system.fs.read_range(inode, len(payload) - 3, 3) == payload[-3:]
    assert system.fs.read_range(inode, 5, 0) == b""


def test_lpns_cover_byte_ranges(system):
    inode = system.fs.install("/l", b"x" * 10000)  # 3 pages
    assert len(inode.lpns(0, 10000)) == 3
    assert len(inode.lpns(0, 4096)) == 1
    assert len(inode.lpns(4095, 2)) == 2
    assert inode.lpns(0, 0) == []


def test_lpns_beyond_eof_rejected(system):
    inode = system.fs.install("/e", b"x" * 100)
    with pytest.raises(FsError):
        inode.lpns(0, 101)
    with pytest.raises(FsError):
        inode.lpns(-1, 10)


def test_delete_frees_and_reuses_extents(system):
    system.fs.install("/victim", b"x" * 8192)
    first_lpns = system.fs.lookup("/victim").all_lpns()
    system.fs.delete("/victim")
    assert not system.fs.exists("/victim")
    inode = system.fs.install("/next", b"y" * 8192)
    assert set(inode.all_lpns()) & set(first_lpns)


def test_delete_clears_device_content(system):
    inode = system.fs.install("/wipe", b"secret!!")
    lpn = inode.all_lpns()[0]
    system.fs.delete("/wipe")
    assert system.fs.device.load_page(lpn)[:8] != b"secret!!"


def test_synthetic_file_size_without_content(system):
    inode = system.fs.install_synthetic("/huge", 1 << 32)  # 4 GiB
    assert inode.size == 1 << 32
    assert inode.synthetic
    assert inode.num_pages == (1 << 32) // 4096


def test_synthetic_needs_positive_size(system):
    with pytest.raises(FsError):
        system.fs.install_synthetic("/zero", 0)


def test_synthetic_content_fn(system):
    def page_fn(index):
        return ("page-%d" % index).encode().ljust(4096, b".")

    inode = system.fs.install_synthetic("/gen", 3 * 4096, content_fn=page_fn)
    assert system.fs.page_content(inode, 2).startswith(b"page-2")
    assert system.fs.read_range(inode, 4096, 6) == b"page-1"


def test_synthetic_oversized_page_from_content_fn(system):
    inode = system.fs.install_synthetic("/bad", 4096, content_fn=lambda i: b"x" * 5000)
    with pytest.raises(FsError):
        system.fs.page_content(inode, 0)


def test_analytic_profile_recorded(system):
    inode = system.fs.install_synthetic(
        "/p", 4096, analytic_profile={b"key": 0.25}
    )
    assert inode.analytic_profile == {b"key": 0.25}
    assert inode.synthetic


def test_grow(system):
    inode = system.fs.create_empty("/grow")
    assert inode.size == 0
    system.fs.grow(inode, 10000)
    assert inode.size == 10000
    assert inode.num_pages == 3
    with pytest.raises(FsError):
        system.fs.grow(inode, 5)


@settings(max_examples=30, deadline=None)
@given(
    payload=st.binary(min_size=1, max_size=20000),
    offset_frac=st.floats(0.0, 1.0),
    length_frac=st.floats(0.0, 1.0),
)
def test_property_read_range_matches_python_slicing(payload, offset_frac, length_frac):
    system = System()
    inode = system.fs.install("/prop", payload)
    offset = int(offset_frac * (len(payload) - 1))
    length = int(length_frac * (len(payload) - offset))
    assert system.fs.read_range(inode, offset, length) == payload[offset:offset + length]
