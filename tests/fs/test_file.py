"""File handles: timed reads/writes, async I/O, flush, RMW edges."""

import pytest

from repro.fs.file import FileHandle
from repro.fs.filesystem import FsError
from repro.sim.engine import all_of


def test_host_handle_requires_io(system):
    inode = system.fs.install("/f", b"data")
    with pytest.raises(ValueError):
        FileHandle(system.fs, inode, internal=False)


def test_read_returns_content_and_takes_time(system):
    system.fs.install("/f", b"abcdef" * 1000)
    handle = system.open_host("/f")

    def program():
        return (yield from handle.read(0, 12))

    assert system.run_fiber(program()) == b"abcdef" * 2
    assert system.sim.now > 0


def test_internal_read_faster_than_host_read(system):
    system.fs.install("/f", b"x" * 8192)
    host = system.open_host("/f")
    internal = system.open_internal("/f")

    t0 = system.sim.now
    system.run_fiber(host.read(0, 4096))
    host_time = system.sim.now - t0
    t0 = system.sim.now
    system.run_fiber(internal.read(0, 4096))
    internal_time = system.sim.now - t0
    assert internal_time < host_time


def test_async_reads_overlap(system):
    system.fs.install_synthetic("/big", 64 * 1024 * 1024)
    handle = system.open_internal("/big")

    def sequential():
        for i in range(8):
            yield from handle.read_timing_only(i * 1 << 20, 1 << 20)

    def overlapped():
        events = [handle.aread_timing_only(i * 1 << 20, 1 << 20) for i in range(8)]
        yield all_of(system.sim, events)

    t0 = system.sim.now
    system.run_fiber(sequential())
    seq_time = system.sim.now - t0
    t0 = system.sim.now
    system.run_fiber(overlapped())
    par_time = system.sim.now - t0
    # A single large read already stripes over all channels, so sequential
    # issue is near peak; overlap only hides per-command setup and pipeline
    # fill — but it must still help.
    assert par_time < 0.9 * seq_time


def test_write_then_read_roundtrip(system):
    system.fs.install("/w", b"\x00" * 8192)
    handle = system.open_internal("/w")
    system.run_fiber(handle.write(100, b"HELLO"))
    assert system.run_fiber(handle.read(98, 9)) == b"\x00\x00HELLO\x00\x00"


def test_write_extends_file(system):
    system.fs.install("/w2", b"ab")
    handle = system.open_internal("/w2")
    system.run_fiber(handle.write(2, b"cdef"))
    assert handle.size == 6
    assert system.run_fiber(handle.read(0, 6)) == b"abcdef"


def test_unaligned_write_preserves_neighbors(system):
    payload = bytes(range(200)) * 50  # 10000 bytes, multi-page
    system.fs.install("/rmw", payload)
    handle = system.open_internal("/rmw")
    system.run_fiber(handle.write(4090, b"XYZ"))  # straddles a page boundary
    expected = payload[:4090] + b"XYZ" + payload[4093:]
    assert system.run_fiber(handle.read(0, len(payload))) == expected


def test_awrite_returns_event(system):
    system.fs.install("/aw", b"\x00" * 4096)
    handle = system.open_internal("/aw")

    def program():
        event = handle.awrite(0, b"async")
        yield event
        return (yield from handle.read(0, 5))

    assert system.run_fiber(program()) == b"async"


def test_write_to_synthetic_rejected(system):
    system.fs.install_synthetic("/syn", 4096)
    handle = system.open_internal("/syn")
    with pytest.raises(FsError):
        system.run_fiber(handle.write(0, b"nope"))


def test_flush_runs(system):
    system.fs.install("/fl", b"\x00" * 4096)
    handle = system.open_internal("/fl")
    system.run_fiber(handle.write(0, b"x"))
    system.run_fiber(handle.flush())  # must not raise


def test_host_write_path(system):
    system.fs.install("/hw", b"\x00" * 4096)
    handle = system.open_host("/hw")
    system.run_fiber(handle.write(0, b"host"))
    assert system.run_fiber(handle.read(0, 4)) == b"host"
    assert system.io.writes >= 1


def test_page_lpns_helper(system):
    system.fs.install("/pl", b"x" * 10000)
    handle = system.open_internal("/pl")
    assert len(handle.page_lpns()) == 3
    assert len(handle.page_lpns(0, 4096)) == 1
