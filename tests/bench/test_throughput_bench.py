"""The simulator-throughput benchmark: determinism and fusion coverage."""

import json

from repro.bench.throughput import (
    Shape,
    run_throughput_bench,
    write_bench_json,
)

# Scaled-down shapes so the smoke test stays fast; same three regimes.
SMALL_SHAPES = {
    "point": Shape(pages=1, commands=24, workers=2, coalesce_limit=8),
    "striped": Shape(pages=64, commands=3, workers=2, coalesce_limit=8),
    "saturation": Shape(pages=512, commands=2, workers=2, coalesce_limit=32),
}


def test_arms_are_bit_identical_and_fusion_engages():
    report = run_throughput_bench(SMALL_SHAPES)
    for name, shape in report["shapes"].items():
        assert shape["timing_identical"], name
        assert shape["events_fast"] < shape["events_slow"], name
        assert shape["fused_pages"] > 0, name
    saturation = report["shapes"]["saturation"]
    assert saturation["event_reduction"] >= 5.0
    assert saturation["timing_cache_hits"] > 0


def test_deterministic_section_reproduces_exactly():
    first = run_throughput_bench(SMALL_SHAPES)
    second = run_throughput_bench(SMALL_SHAPES)
    assert first["shapes"] == second["shapes"]
    # Only the wall section may differ between runs.
    assert set(first) == {"shapes", "wall"}


def test_bench_json_round_trips_sorted(tmp_path):
    report = run_throughput_bench(SMALL_SHAPES)
    path = tmp_path / "BENCH_sim_throughput.json"
    write_bench_json(report, str(path))
    loaded = json.loads(path.read_text())
    assert loaded == report
    keys = list(loaded.keys())
    assert keys == sorted(keys)
