"""Experiment harness: formatting and persistence."""

import os

from repro.bench.harness import ExperimentResult, format_table, save_result


def test_format_table_alignment():
    text = format_table(["name", "value"], [["long-name", 1.5], ["x", 22]])
    lines = text.splitlines()
    assert len(lines) == 4  # header, rule, two rows
    assert lines[0].endswith("value")
    widths = {len(line) for line in lines}
    assert len(widths) == 1  # all lines equal width


def test_format_table_float_rendering():
    text = format_table(["v"], [[3.14159265]])
    assert "3.142" in text


def test_result_format_includes_notes():
    result = ExperimentResult(
        "Table X", "demo", ["a"], [[1]], notes=["remember this"],
    )
    formatted = result.format()
    assert "Table X: demo" in formatted
    assert "note: remember this" in formatted


def test_save_result_writes_file(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    result = ExperimentResult("Fig Z", "t", ["h"], [[1]])
    path = save_result(result, "demo")
    assert os.path.exists(path)
    with open(path) as handle:
        assert "Fig Z" in handle.read()
