"""The experiment-runner command line (python -m repro.bench)."""

import pytest

from repro.bench.__main__ import EXPERIMENTS, main


def test_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["does-not-exist"])


def test_run_single_experiment(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "Table II" in out
    assert "saved:" in out
    assert (tmp_path / "table2.txt").exists()
    assert (tmp_path / "table2.csv").exists()


def test_no_save_flag(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    assert main(["table2", "--no-save"]) == 0
    assert "saved:" not in capsys.readouterr().out
    assert not (tmp_path / "table2.txt").exists()
