"""The standing recovery benchmark: correctness and determinism."""

import json

import pytest

from repro.bench.resilience import (
    exp_resilience,
    run_resilience_bench,
    write_bench_json,
)


def test_small_storm_run_is_correct_and_faulted():
    report = run_resilience_bench(num_queries=6, num_rows=4000, seed=7)
    assert report["wrong_results"] == 0
    assert report["queries"] == 6
    assert report["driver_scans"] == 6
    assert report["faulted_fraction"] >= 0.01  # the storm must bite
    assert report["goodput_qps"] > 0
    assert report["p99_us"] >= report["p50_us"] > 0


def test_same_seed_reproduces_the_exact_report():
    first = run_resilience_bench(num_queries=5, num_rows=4000, seed=11)
    second = run_resilience_bench(num_queries=5, num_rows=4000, seed=11)
    assert first == second


def test_bench_json_round_trips_sorted(tmp_path):
    report = run_resilience_bench(num_queries=4, num_rows=4000, seed=3)
    path = tmp_path / "BENCH_resilience.json"
    write_bench_json(report, str(path))
    loaded = json.loads(path.read_text())
    assert loaded == report
    keys = list(json.loads(path.read_text()).keys())
    assert keys == sorted(keys)


def test_exp_resilience_reports_zero_wrong_results(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    result = exp_resilience()
    metric = dict((row[0], row[1]) for row in result.rows)
    assert metric["wrong_results"] == 0
    assert metric["faulted_fraction"] >= 0.01
    assert (tmp_path / "BENCH_resilience.json").exists()


@pytest.mark.faults
def test_storm_soak_many_seeds_zero_wrong_results():
    """Opt-in soak: the standing benchmark across several storm seeds."""
    for seed in (1, 2, 3, 5, 8, 13):
        report = run_resilience_bench(num_queries=8, num_rows=6000, seed=seed)
        assert report["wrong_results"] == 0, (seed, report)
        assert report["driver_gave_up"] == 0, (seed, report)
