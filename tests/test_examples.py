"""Smoke tests: the runnable examples must stay runnable.

Each example self-verifies (asserts correctness internally) and prints an
OK/summary line; here we execute the quick ones end to end.  The two
long-running demos (string_search_demo sweeps 512 MiB three times,
tpch_ndp_demo generates a larger database) are exercised by their library
tests instead.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                            "examples")

QUICK_EXAMPLES = [
    "quickstart.py",
    "wordcount_demo.py",
    "pointer_chase_demo.py",
    "multi_tenant.py",
    "log_analytics_demo.py",
]


@pytest.mark.parametrize("name", QUICK_EXAMPLES)
def test_example_runs(name):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True, text=True, timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()  # it said something


def test_all_examples_exist():
    present = {name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")}
    assert set(QUICK_EXAMPLES) <= present
    # The full catalog advertised in the README.
    for name in ("string_search_demo.py", "tpch_ndp_demo.py", "sql_demo.py",
                 "instrumented_run.py"):
        assert name in present
