"""Load generator + CLI: determinism, horizon discipline, mix registry."""

import json

import pytest

from repro.serve.__main__ import main
from repro.serve.loadgen import LoadGenerator, TenantProfile
from repro.serve.manager import JobManager
from repro.serve.mixes import mix_names, run_mix


# ------------------------------------------------------------------ validation
def test_loadgen_validates_inputs():
    from repro.host.platform import System

    system = System()
    manager = JobManager(system, [TenantProfile("a", "string_search").tenant()])
    with pytest.raises(ValueError):
        LoadGenerator(manager, [TenantProfile("a", "string_search",
                                              mode="sideways")])
    with pytest.raises(ValueError):
        LoadGenerator(manager, [TenantProfile("a", "telepathy")])
    with pytest.raises(ValueError):
        LoadGenerator(manager, [TenantProfile("a", "string_search")],
                      horizon_s=0)


def test_run_mix_validates_inputs():
    with pytest.raises(ValueError):
        run_mix("no_such_mix")
    with pytest.raises(ValueError):
        run_mix("smoke", load_scale=0)


def test_mix_registry_is_sorted_and_nonempty():
    names = mix_names()
    assert names == sorted(names)
    assert "smoke" in names and "overload" in names


# ---------------------------------------------------------------- determinism
def snapshot(mix="smoke", **kwargs):
    result = run_mix(mix, **kwargs)
    return result.system.metrics.to_json()


def test_same_seed_same_metrics():
    assert snapshot(seed=11) == snapshot(seed=11)


def test_different_seed_different_arrivals():
    first = run_mix("smoke", seed=11)
    second = run_mix("smoke", seed=12)
    assert first.loadgen.jobs_offered != second.loadgen.jobs_offered or (
        first.system.metrics.to_json() != second.system.metrics.to_json())


def test_policies_all_complete_smoke():
    for policy in ("fifo", "wfq", "priority"):
        result = run_mix("smoke", policy=policy)
        assert result.manager.idle
        assert result.manager.jobs_submitted > 0


def test_horizon_bounds_arrivals():
    short = run_mix("smoke", horizon_s=0.01)
    long = run_mix("smoke", horizon_s=0.05)
    assert short.loadgen.jobs_offered < long.loadgen.jobs_offered


def test_load_scale_scales_offered_load():
    light = run_mix("saturation", load_scale=0.5)
    heavy = run_mix("saturation", load_scale=2.0)
    assert light.loadgen.jobs_offered < heavy.loadgen.jobs_offered


# ------------------------------------------------------------------------ CLI
def test_cli_list_mixes(capsys):
    assert main(["--list-mixes"]) == 0
    out = capsys.readouterr().out.splitlines()
    assert out == mix_names()


def test_cli_writes_metrics_json(tmp_path, capsys):
    out_file = tmp_path / "metrics.json"
    assert main(["--mix", "smoke", "--out", str(out_file)]) == 0
    stdout = capsys.readouterr().out
    assert "mix=smoke" in stdout
    payload = json.loads(out_file.read_text())
    assert payload["mix"] == "smoke"
    assert payload["schema"] == 1


def test_cli_output_reproducible(tmp_path, capsys):
    """Two identical invocations: byte-identical stdout and JSON."""
    first = tmp_path / "a.json"
    second = tmp_path / "b.json"
    main(["--mix", "smoke", "--policy", "wfq", "--out", str(first)])
    stdout_first = capsys.readouterr().out
    main(["--mix", "smoke", "--policy", "wfq", "--out", str(second)])
    stdout_second = capsys.readouterr().out
    # The trailing "metrics -> <path>" line differs by tmp filename only.
    strip = lambda text: [line for line in text.splitlines()
                          if not line.startswith("metrics ->")]
    assert strip(stdout_first) == strip(stdout_second)
    assert first.read_bytes() == second.read_bytes()


def test_slo_metrics_present_after_mix():
    result = run_mix("smoke")
    registry = result.system.metrics
    for tenant in sorted(result.manager.tenants):
        hist = registry.histogram("serve.tenant.%s.total_us" % tenant)
        submitted = registry.counter("serve.tenant.%s.submitted" % tenant)
        assert submitted.value > 0
        assert hist.count > 0
        snap = hist.snapshot()
        assert snap["p50"] <= snap["p95"] <= snap["p99"]
    dispatched = registry.counter("serve.device0.dispatched")
    assert dispatched.value > 0
