"""JobManager: admission, dispatch, module residency, timeouts, placement."""

import pytest

from repro.host.platform import System
from repro.serve.admission import SlotTable
from repro.serve.jobs import (
    DEFAULT_JOB_DRAM_BYTES,
    JobSpec,
    JobState,
    install_serve_datasets,
)
from repro.serve.manager import JobManager, Tenant
from repro.ssd.config import SSDConfig


def make_manager(num_ssds=1, tenants=None, config=None, **kwargs):
    system = System(num_ssds=num_ssds, ssd_config=config)
    install_serve_datasets(system)
    tenants = tenants or [Tenant("a"), Tenant("b")]
    return system, JobManager(system, tenants, **kwargs)


def spec(tenant="a", kind="string_search", **kwargs):
    return JobSpec(tenant=tenant, kind=kind, **kwargs)


def run_to_drain(system, manager):
    system.run_fiber(manager.drain(), name="drain")


# ------------------------------------------------------------------ admission
def test_unknown_tenant_rejected():
    _, manager = make_manager()
    decision, job = manager.submit(spec(tenant="nobody"))
    assert not decision and decision.reason == "unknown_tenant"
    assert job.state == JobState.REJECTED
    assert job.done.triggered


def test_unknown_kind_rejected():
    _, manager = make_manager()
    decision, job = manager.submit(spec(kind="mine_bitcoin"))
    assert not decision and decision.reason == "unknown_kind"


def test_queue_limit_backpressure():
    system, manager = make_manager(
        tenants=[Tenant("a", queue_limit=2)])
    # Slots are free, so the first submits dispatch immediately; saturate
    # the device first so later submits actually queue.
    accepted = []
    rejected = 0
    for _ in range(12):
        decision, _job = manager.submit(spec())
        if decision:
            accepted.append(_job)
        else:
            assert decision.reason == "queue_full"
            rejected += 1
    assert rejected > 0
    run_to_drain(system, manager)
    assert all(job.state == JobState.DONE for job in accepted)


def test_duplicate_tenant_rejected_at_build():
    system = System()
    with pytest.raises(ValueError):
        JobManager(system, [Tenant("a"), Tenant("a")])


def test_tenant_validation():
    with pytest.raises(ValueError):
        Tenant("a", weight=0)
    with pytest.raises(ValueError):
        Tenant("a", queue_limit=0)


def test_unsatisfiable_dram_ask_rejected_not_deadlocked():
    system, manager = make_manager()
    budget = system.config.serve_dram_budget_bytes
    decision, job = manager.submit(spec(dram_bytes=budget + 1))
    assert decision.accepted  # queue admission passes...
    run_to_drain(system, manager)  # ...but dispatch can never place it
    assert job.state == JobState.REJECTED
    assert job.reject_reason == "unsatisfiable"


# ----------------------------------------------------------------- slot table
def test_slot_table_budgets():
    config = SSDConfig(serve_app_slots=2,
                       serve_dram_budget_bytes=DEFAULT_JOB_DRAM_BYTES)
    table = SlotTable(config)
    job1 = type("J", (), {"spec": spec()})()
    assert table.can_admit(job1)
    table.admit(job1)
    assert table.slots_in_use == 1
    # Second job fits a slot but not the DRAM budget.
    job2 = type("J", (), {"spec": spec()})()
    assert not table.can_admit(job2)
    table.release(job1)
    assert table.can_admit(job2)
    assert table.peak_slots_in_use == 1
    assert table.peak_dram_reserved_bytes == DEFAULT_JOB_DRAM_BYTES


def test_slot_table_guards_double_release():
    table = SlotTable(SSDConfig())
    job = type("J", (), {"spec": spec()})()
    table.admit(job)
    table.release(job)
    with pytest.raises(RuntimeError):
        table.release(job)


def test_slots_cap_concurrency():
    config = SSDConfig(serve_app_slots=2)
    system, manager = make_manager(config=config)
    for _ in range(8):
        manager.submit(spec())
    run_to_drain(system, manager)
    server = manager.servers[0]
    assert server.slots.peak_slots_in_use <= 2
    assert server.slots.slots_in_use == 0
    assert server.slots.dram_reserved_bytes == 0


# ------------------------------------------------------------ module lifecycle
def test_modules_shared_then_unloaded():
    system, manager = make_manager()
    for _ in range(4):
        manager.submit(spec(kind="string_search"))
    manager.submit(spec(kind="pointer_chase"))
    run_to_drain(system, manager)
    server = manager.servers[0]
    # Everything drained: no module stays resident, none leaks in the runtime.
    assert server.resident_modules == ()
    assert server.ssd.runtime.loaded_modules == ()


def test_all_job_kinds_produce_results():
    system, manager = make_manager(
        tenants=[Tenant("a", queue_limit=16)])
    jobs = []
    for kind in ("string_search", "pointer_chase", "db_scan"):
        _, job = manager.submit(spec(kind=kind))
        jobs.append(job)
    run_to_drain(system, manager)
    for job in jobs:
        assert job.state == JobState.DONE
        assert job.result is not None
    # string_search counts matches; db_scan counts rows -- both are ints.
    assert all(isinstance(job.result, int) for job in jobs)


def test_failed_job_does_not_kill_serving(monkeypatch):
    system, manager = make_manager()
    from repro.serve.jobs import JOB_KINDS

    def boom(server, mid, job):
        raise RuntimeError("injected fault")
        yield  # pragma: no cover - makes this a generator function

    monkeypatch.setattr(JOB_KINDS["pointer_chase"], "run", boom)
    _, bad = manager.submit(spec(kind="pointer_chase"))
    _, good = manager.submit(spec(kind="string_search"))
    run_to_drain(system, manager)
    assert bad.state == JobState.FAILED
    assert bad.error is not None
    assert good.state == JobState.DONE
    server = manager.servers[0]
    assert server.slots.slots_in_use == 0
    assert server.ssd.runtime.loaded_modules == ()


# -------------------------------------------------------------------- timeout
def test_queue_timeout_retires_stale_jobs():
    config = SSDConfig(serve_app_slots=1)
    system, manager = make_manager(
        config=config, tenants=[Tenant("a", queue_limit=32)])
    jobs = []
    for _ in range(20):
        _, job = manager.submit(spec(timeout_us=1_000.0))
        jobs.append(job)
    run_to_drain(system, manager)
    states = {job.state for job in jobs}
    assert JobState.TIMED_OUT in states  # deep queue at 1 slot: stale tails
    assert JobState.DONE in states  # the head still completed
    timed_out = [job for job in jobs if job.state == JobState.TIMED_OUT]
    assert all(job.start_ns is None for job in timed_out)


# ------------------------------------------------------------------ placement
def test_round_robin_spreads_across_devices():
    system, manager = make_manager(num_ssds=2, placement="round_robin")
    jobs = []
    for _ in range(6):
        _, job = manager.submit(spec())
        jobs.append(job)
    run_to_drain(system, manager)
    devices = sorted({job.device_index for job in jobs})
    assert devices == [0, 1]


def test_least_loaded_prefers_idle_device():
    system, manager = make_manager(num_ssds=2, placement="least_loaded")
    jobs = []
    for _ in range(8):
        _, job = manager.submit(spec())
        jobs.append(job)
    run_to_drain(system, manager)
    assert sorted({job.device_index for job in jobs}) == [0, 1]


def test_drain_on_idle_manager_returns_immediately():
    system, manager = make_manager()
    run_to_drain(system, manager)
    assert manager.idle


def test_tenant_pressure_signal():
    config = SSDConfig(serve_app_slots=1)
    system, manager = make_manager(
        config=config, tenants=[Tenant("a", queue_limit=4)])
    assert manager.tenant_pressure("a") == 0.0
    for _ in range(5):
        manager.submit(spec())
    assert manager.tenant_pressure("a") == 1.0
    run_to_drain(system, manager)
    assert manager.tenant_pressure("a") == 0.0
