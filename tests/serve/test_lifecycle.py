"""Serving-layer steady state: repeated app lifecycles must not leak.

The serving layer runs thousands of Application lifecycles against one
long-lived runtime, so any per-application residue — channel grants, user
arena allocations, fiber lists, link registrations, the runtime's
application roster — compounds into an eventual hang or OOM.  These are the
regression tests for :meth:`Application._teardown` and
:meth:`BiscuitRuntime.retire_application`.
"""

from repro.core import SSD, Application, SSDLetProxy
from repro.host.platform import System
from repro.serve.jobs import JobSpec, install_serve_datasets
from repro.serve.manager import JobManager, Tenant

from tests.core.helpers import IMAGE_PATH, deploy

CYCLES = 100


def resource_counts(ssd):
    runtime = ssd.runtime
    return {
        "applications": len(runtime.applications),
        "pending_links": len(runtime.pending_links),
        "declared_links": len(runtime.declared_links),
        "user_arena_used": runtime.allocators.user.used,
        "loaded_modules": len(runtime.loaded_modules),
        "data_channels_free": ssd.channels.data_channels.available,
    }


def test_hundred_lifecycles_hold_steady_state():
    system = System()
    deploy(system)
    ssd = SSD(system)
    mid = system.run_fiber(ssd.loadModule(IMAGE_PATH))
    baseline = resource_counts(ssd)

    def one_cycle(index):
        app = Application(ssd, "cycle-%d" % index)
        producer = SSDLetProxy(app, mid, "idProducer", (3,))
        port = app.connectTo(producer.out(0), int)
        yield from app.start()
        values = yield from port.drain()
        yield from app.wait()
        return values

    for index in range(CYCLES):
        assert system.run_fiber(one_cycle(index)) == [0, 1, 2]
        assert resource_counts(ssd) == baseline, (
            "resource leak after %d lifecycles" % (index + 1))


def test_stop_releases_resources_like_wait():
    system = System()
    deploy(system)
    ssd = SSD(system)
    mid = system.run_fiber(ssd.loadModule(IMAGE_PATH))
    baseline = resource_counts(ssd)

    def one_cycle(index):
        app = Application(ssd, "stopped-%d" % index)
        # A consumer fed from the host never ends on its own; stop() must
        # still tear the application down completely.
        consumer = SSDLetProxy(app, mid, "idConsumer")
        port = app.connectFrom(int, consumer.in_(0))
        yield from app.start()
        yield from port.put(index)
        app.stop()

    for index in range(20):
        system.run_fiber(one_cycle(index))
        # Interrupted fibers unwind at their next resume point; drain the
        # event queue so their teardown finally-blocks run.
        system.sim.run()
        counts = resource_counts(ssd)
        assert counts == baseline, (
            "leak after stop() cycle %d: %r vs %r"
            % (index + 1, counts, baseline))


def test_serving_churn_leaves_runtime_clean():
    """100 served jobs (module churn included) end at the boot footprint."""
    system = System()
    install_serve_datasets(system)
    manager = JobManager(system, [Tenant("a", queue_limit=8)])
    server = manager.servers[0]
    runtime = server.ssd.runtime
    kinds = ("string_search", "pointer_chase", "db_scan")

    def churn():
        for index in range(CYCLES):
            manager.submit(JobSpec(tenant="a", kind=kinds[index % 3]))
            yield from manager.drain()

    system.run_fiber(churn())
    assert manager.idle
    assert runtime.applications == []
    assert runtime.loaded_modules == ()
    assert runtime.allocators.user.used == 0
    assert server.slots.slots_in_use == 0
    assert server.slots.dram_reserved_bytes == 0
    assert server.ssd.channels.data_channels.available == \
        server.config.channel_pool_size
