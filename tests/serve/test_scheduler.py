"""Scheduler policies: ordering, fairness, aging, determinism."""

import pytest

from repro.serve.jobs import Job, JobSpec
from repro.serve.scheduler import (
    FIFOScheduler,
    PriorityScheduler,
    WFQScheduler,
    make_scheduler,
)
from repro.sim.engine import Simulator
from repro.sim.units import us_to_ns


def make_job(sim, tenant="t", cost=1.0, priority=0, submit_ns=0):
    spec = JobSpec(tenant=tenant, kind="string_search", cost=cost,
                   priority=priority)
    return Job(spec, sim, submit_ns=submit_ns)


def drain(sched, now_ns=0):
    order = []
    while len(sched):
        order.append(sched.pop(now_ns))
    return order


# ----------------------------------------------------------------------- FIFO
def test_fifo_preserves_arrival_order():
    sim = Simulator()
    sched = FIFOScheduler()
    jobs = [make_job(sim, tenant="t%d" % i) for i in range(5)]
    for job in jobs:
        sched.push(job)
    assert sched.peek(0) is jobs[0]
    assert drain(sched) == jobs


# ------------------------------------------------------------------------ WFQ
def test_wfq_light_tenant_overtakes_backlog():
    """A low-weight flood must not starve a high-weight tenant's job."""
    sim = Simulator()
    sched = WFQScheduler({"heavy": 1.0, "light": 4.0})
    flood = [make_job(sim, tenant="heavy") for _ in range(8)]
    for job in flood:
        sched.push(job)
    late = make_job(sim, tenant="light")
    sched.push(late)
    order = drain(sched)
    # The light job's finish tag (vtime + 1/4) beats all but the heavy
    # backlog entries already carrying smaller tags.
    assert order.index(late) < len(order) - 1
    assert order.index(late) <= 1


def test_wfq_equal_weights_interleave_by_sequence():
    sim = Simulator()
    sched = WFQScheduler({})
    a = [make_job(sim, tenant="a") for _ in range(3)]
    b = [make_job(sim, tenant="b") for _ in range(3)]
    for ja, jb in zip(a, b):
        sched.push(ja)
        sched.push(jb)
    order = drain(sched)
    # Identical finish tags break on push order: strict interleave.
    assert order == [a[0], b[0], a[1], b[1], a[2], b[2]]


def test_wfq_weight_ratio_controls_share():
    """Over a long backlog, pops respect the 3:1 weight ratio."""
    sim = Simulator()
    sched = WFQScheduler({"big": 3.0, "small": 1.0})
    for _ in range(30):
        sched.push(make_job(sim, tenant="big"))
        sched.push(make_job(sim, tenant="small"))
    first16 = [job.spec.tenant for job in
               [sched.pop(0) for _ in range(16)]]
    assert first16.count("big") == 12
    assert first16.count("small") == 4


def test_wfq_peek_matches_pop():
    sim = Simulator()
    sched = WFQScheduler({"a": 2.0})
    for tenant in ("b", "a", "b"):
        sched.push(make_job(sim, tenant=tenant))
    while len(sched):
        assert sched.peek(0) is sched.pop(0)


# ------------------------------------------------------------------- priority
def test_priority_orders_high_first_then_fifo():
    sim = Simulator()
    sched = PriorityScheduler()
    low1 = make_job(sim, priority=0)
    high = make_job(sim, priority=5)
    low2 = make_job(sim, priority=0)
    for job in (low1, high, low2):
        sched.push(job)
    assert drain(sched) == [high, low1, low2]


def test_priority_aging_prevents_starvation():
    sim = Simulator()
    sched = PriorityScheduler(aging_us=1000.0)
    old_low = make_job(sim, priority=0, submit_ns=0)
    fresh_high = make_job(sim, priority=2, submit_ns=us_to_ns(3000))
    sched.push(old_low)
    sched.push(fresh_high)
    now = us_to_ns(3000)
    # At t=3ms the low job aged 3 bands (3 > 2): it outranks the fresh one.
    assert sched.pop(now) is old_low
    assert sched.pop(now) is fresh_high


def test_priority_rejects_bad_aging():
    with pytest.raises(ValueError):
        PriorityScheduler(aging_us=0)


# -------------------------------------------------------------------- factory
def test_make_scheduler_names():
    assert make_scheduler("fifo").name == "fifo"
    assert make_scheduler("wfq", {"a": 2.0}).name == "wfq"
    assert make_scheduler("priority").name == "priority"
    with pytest.raises(ValueError):
        make_scheduler("lifo")


def test_empty_schedulers_return_none():
    for policy in ("fifo", "wfq", "priority"):
        sched = make_scheduler(policy)
        assert sched.peek(0) is None
        assert sched.pop(0) is None
        assert len(sched) == 0
