"""Serving-layer resilience: retry, failover, recovery-window shedding."""

import pytest

from repro.host.platform import System
from repro.serve.admission import ResilienceConfig
from repro.serve.jobs import JobSpec, JobState, install_serve_datasets
from repro.serve.manager import JobManager, Tenant
from repro.testing.faults import Fault, ScriptedInjector


def make_manager(num_ssds=2, resilience=None, tenants=None):
    system = System(num_ssds=num_ssds)
    install_serve_datasets(system)
    tenants = tenants or [Tenant("a")]
    manager = JobManager(system, tenants, resilience=resilience)
    return system, manager


def spec(slo_us=None, **kwargs):
    return JobSpec(tenant="a", kind="string_search", slo_us=slo_us, **kwargs)


def run_to_drain(system, manager):
    system.run_fiber(manager.drain(), name="drain")


# ------------------------------------------------------------------- config
def test_resilience_config_validation():
    with pytest.raises(ValueError):
        ResilienceConfig(max_attempts=0)
    with pytest.raises(ValueError):
        ResilienceConfig(shed_threshold=0.0)
    with pytest.raises(ValueError):
        ResilienceConfig(shed_threshold=1.5)


def test_should_shed_spares_slo_bound_work():
    config = ResilienceConfig()
    # Quiet fleet: nothing sheds.
    assert not config.should_shed(spec(), 0, 2)
    # Whole fleet recovering: best-effort sheds, SLO-bound does not.
    assert config.should_shed(spec(), 2, 2)
    assert not config.should_shed(spec(slo_us=2000.0), 2, 2)
    # Below the threshold fraction nothing sheds either.
    assert not config.should_shed(spec(), 1, 2)
    # And shedding can be disabled outright.
    off = ResilienceConfig(shed_best_effort=False)
    assert not off.should_shed(spec(), 2, 2)


# ----------------------------------------------------------------- shedding
def test_best_effort_submissions_shed_while_fleet_recovers():
    system, manager = make_manager(resilience=ResilienceConfig())
    for index in range(system.num_ssds):
        manager.recovery.note_fault(index)
    decision, job = manager.submit(spec())
    assert not decision and decision.reason == "shed_recovery"
    assert job.state == JobState.REJECTED
    assert job.done.triggered
    # The same submission with an SLO rides through.
    decision, job = manager.submit(spec(slo_us=50_000.0))
    assert decision.accepted
    run_to_drain(system, manager)
    assert job.state == JobState.DONE
    shed = system.metrics.counter("serve.tenant.a.shed").value
    assert shed == 1


def test_shedding_stops_once_the_window_expires():
    system, manager = make_manager(
        resilience=ResilienceConfig(recovery_window_us=100.0))
    for index in range(system.num_ssds):
        manager.recovery.note_fault(index)
    system.sim.run(system.sim.timeout(1_000_000))  # outlive the window
    decision, job = manager.submit(spec())
    assert decision.accepted
    run_to_drain(system, manager)
    assert job.state == JobState.DONE


def test_without_resilience_nothing_sheds():
    system, manager = make_manager(resilience=None)
    assert manager.recovery is None
    decision, job = manager.submit(spec())
    assert decision.accepted
    run_to_drain(system, manager)
    assert job.state == JobState.DONE


# ---------------------------------------------------------- placement steer
def test_placement_avoids_recovering_devices():
    system, manager = make_manager(resilience=ResilienceConfig())
    manager.recovery.note_fault(0)
    jobs = [manager.submit(spec())[1] for _ in range(2)]
    run_to_drain(system, manager)
    assert all(job.state == JobState.DONE for job in jobs)
    # Device 0 is mid-recovery; everything landed on device 1.
    assert all(job.device_index == 1 for job in jobs)


# ------------------------------------------------------------ retry/failover
def test_device_fault_retries_and_fails_over():
    system, manager = make_manager(resilience=ResilienceConfig(max_attempts=3))
    # Device 0 fails every read it sees for a while: the first attempt
    # (module load included) dies with a typed device error.
    script = {ordinal: Fault("uncorrectable") for ordinal in range(400)}
    system.devices[0].attach_fault_injector(ScriptedInjector(script))
    decision, job = manager.submit(spec())
    assert decision.accepted
    assert job.device_index == 0  # round robin starts at the faulty device
    run_to_drain(system, manager)
    assert job.state == JobState.DONE
    assert job.device_index == 1  # the retry moved off the dead device
    registry = system.metrics
    assert registry.counter("serve.tenant.a.retries").value >= 1
    assert registry.counter("serve.tenant.a.failovers").value >= 1
    assert registry.counter("serve.device0.faults").value >= 1
    assert registry.counter("serve.device1.failover_in").value >= 1
    assert manager.recovery.faults_noted >= 1


def test_retry_budget_exhaustion_fails_the_job_not_the_loop():
    system, manager = make_manager(
        num_ssds=1, resilience=ResilienceConfig(max_attempts=2))
    script = {ordinal: Fault("uncorrectable") for ordinal in range(4000)}
    system.devices[0].attach_fault_injector(ScriptedInjector(script))
    failed, follow = manager.submit(spec())[1], None
    run_to_drain(system, manager)
    assert failed.state == JobState.FAILED
    assert failed.error is not None
    # The serving loop survived: once the device heals (script drained,
    # recovery window over) a later job still completes.
    system.devices[0].attach_fault_injector(ScriptedInjector({}))
    system.sim.run(system.sim.timeout(100_000_000))  # outlive the window
    follow = manager.submit(spec())[1]
    run_to_drain(system, manager)
    assert follow.state == JobState.DONE


def test_without_resilience_device_errors_fail_fast():
    system, manager = make_manager(num_ssds=1, resilience=None)
    script = {ordinal: Fault("uncorrectable") for ordinal in range(400)}
    system.devices[0].attach_fault_injector(ScriptedInjector(script))
    job = manager.submit(spec())[1]
    run_to_drain(system, manager)
    assert job.state == JobState.FAILED
    assert system.metrics.counter("serve.tenant.a.retries").value == 0
