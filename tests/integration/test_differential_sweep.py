"""The acceptance sweep: ≥100 seeded query/config/fault combos, differential
NDP-vs-host-vs-reference, zero tolerated mismatches.

The default sweep is sized for every-push CI; the ``faults``-marked sweep is
the long soak (``pytest -m faults`` or ``make test-faults``).
"""

import pytest

from repro.testing.differential import run_sweep, summarize


def _assert_no_mismatches(results):
    summary = summarize(results)
    assert not summary["mismatches"], "\n".join(summary["mismatches"])


def test_differential_sweep_100_cases():
    faulted = run_sweep(range(60), faults=True)
    clean = run_sweep(range(60, 100), faults=False)
    results = faulted + clean

    _assert_no_mismatches(results)
    # Without faults every case must produce a result that matches.
    assert all(r.outcome == "match" for r in clean)
    # With faults a case may end in a *typed* device error, nothing else.
    assert all(r.outcome in ("match", "device-error") for r in faulted)

    summary = summarize(results)
    assert summary["cases"] == 100
    # The sweep must actually exercise both paths: most generated predicates
    # are matcher-amenable and the thresholds are forced open, so the NDP
    # engine should offload in the bulk of the cases...
    assert summary["offloaded"] >= 60
    # ...and fault injection must have actually fired.
    assert summary["faults_injected"] > 0


@pytest.mark.faults
def test_differential_soak_400_cases():
    results = (run_sweep(range(1000, 1300), faults=True)
               + run_sweep(range(1300, 1400), faults=False))
    _assert_no_mismatches(results)
    assert summarize(results)["cases"] == 400
