"""The shipped engine under the interleaving sanitizer (golden workloads).

Acceptance gate for :mod:`repro.analysis.races`: the golden-trace
workloads must run with *zero* footprint conflicts between tied events,
and replaying them with reversed tie-breaking inside every provably
order-free batch must reproduce a bit-identical trace digest and result —
with the fused fast path configured on and off.
"""

import pytest

from repro.analysis.races import check_workload, main as races_main
from repro.bench.experiments import (
    exp_fig7_read_bandwidth,
    exp_table3_read_latency,
)
from repro.host.platform import System
from repro.sim.units import KIB, MIB
from repro.ssd.config import SSDConfig


def test_table3_conflict_free_and_bit_identical():
    report = check_workload(lambda: exp_table3_read_latency(samples=8))
    assert report.hazards == []
    assert report.digests_match and report.results_match
    assert report.batches > 0


def test_fig7_conflict_free_and_bit_identical_under_reversal():
    report = check_workload(lambda: exp_fig7_read_bandwidth(
        sizes=[64 * KIB], sweep_bytes=8 * MIB))
    assert report.hazards == []
    assert report.digests_match and report.results_match
    # The fan-out workload must give the perturbation real bite: hundreds
    # of multi-entry batches are provably order-free and get reversed.
    assert report.reversed_batches > 100


@pytest.mark.parametrize("fast_path", [True, False], ids=["fast", "slow"])
def test_internal_read_sweep_clean_with_fastpath_on_and_off(fast_path):
    """Same device workload with SSDConfig.sim_fast_path toggled: both
    configurations must be conflict-free and survive reversed ties.  (Under
    the monitor fused plans de-gate to per-event stepping — like traced
    runs — so both arms also exercise the same dispatch path.)"""

    def workload():
        config = SSDConfig(sim_fast_path=fast_path)
        system = System(ssd_config=config)
        system.fs.install_synthetic("/race/sweep.dat", 8 * MIB)
        handle = system.open_internal("/race/sweep.dat")

        def program():
            total = 0
            for index in range(16):
                rows = yield from handle.read_timing_only(
                    index * 256 * KIB, 256 * KIB)
                total += 1
            return (total, system.sim.now)

        return system.run_fiber(program())

    report = check_workload(workload)
    assert report.hazards == []
    assert report.digests_match and report.results_match
    assert report.clean


def test_race_check_config_knob_builds_a_monitored_world():
    system = System(ssd_config=SSDConfig(race_check=True))
    assert system.sim.race is not None
    assert System(ssd_config=SSDConfig()).sim.race is None


def test_races_cli_reports_clean_on_golden_workload(capsys):
    assert races_main(["--workload", "table3"]) == 0
    out = capsys.readouterr().out
    assert "CLEAN" in out
    assert "digests identical" in out
