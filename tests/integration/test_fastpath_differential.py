"""The fast-path acceptance sweep: fused-on vs fused-off, bit-identical.

``run_case_fastpath`` executes the same seeded query/config/fault combo
twice — ``sim_fast_path`` on and off — and demands exactly equal result
rows, exactly equal typed errors, and the same final ``sim.now``.  Unlike
the NDP-vs-host sweep (which tolerates typed device errors as an outcome
class), here *any* asymmetry between the arms is a bug: the fault streams
are pre-drawn per channel command, so even error cases must fail on the
same page at the same instant.
"""

import pytest

from repro.testing.differential import run_case_fastpath, run_fastpath_sweep


def _assert_all_match(results):
    mismatches = [r.detail for r in results if r.outcome != "match"]
    assert not mismatches, "\n".join(mismatches)


def test_fastpath_sweep_60_cases():
    faulted = run_fastpath_sweep(range(40), faults=True)
    clean = run_fastpath_sweep(range(40, 60), faults=False)
    results = faulted + clean
    _assert_all_match(results)
    # The sweep must actually exercise fusion — an always-materializing (or
    # never-engaging) fast path would pass the equality check vacuously.
    fused_pages = sum(r.fault_counters["fused_pages"] for r in results)
    assert fused_pages > 100
    # And fusing must really shrink the event stream somewhere.
    assert any(r.fault_counters["fast_events"]
               < r.fault_counters["slow_events"] for r in results)
    # Query work must have offloaded in the bulk of the cases in both arms.
    assert sum(1 for r in results if r.offloaded) >= 30


@pytest.mark.faults
def test_fastpath_soak_200_cases():
    results = (run_fastpath_sweep(range(2000, 2150), faults=True)
               + run_fastpath_sweep(range(2150, 2200), faults=False))
    _assert_all_match(results)


def test_fastpath_case_reports_counters():
    result = run_case_fastpath(3, faults=False)
    assert result.outcome == "match"
    assert set(result.fault_counters) == {
        "fast_events", "slow_events", "fused_pages"}
