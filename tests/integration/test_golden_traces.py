"""Golden-trace regression: re-run reduced-scale benchmark slices and hold
them to the committed ``benchmarks/results/*.csv`` numbers.

Both experiments are deterministic, and fig7 computes every request size
over an independent 32 MiB window (``total = min(sweep_bytes, max(size*8,
32*MiB))``), so a two-size slice reproduces exactly the rows the full sweep
committed.  The tolerance guards against incidental model drift — a change
that moves these numbers must regenerate the goldens deliberately.
"""

import csv
import os

import pytest

from repro.bench.experiments import (
    exp_fig7_read_bandwidth,
    exp_table3_read_latency,
)
from repro.sim.units import KIB, MIB

GOLDEN_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "benchmarks", "results")
TOLERANCE = 0.05  # 5% relative


def load_golden(name):
    path = os.path.join(GOLDEN_DIR, name)
    with open(path, newline="") as handle:
        return list(csv.DictReader(handle))


def assert_close(measured, golden, what):
    golden = float(golden)
    measured = float(measured)
    assert measured == pytest.approx(golden, rel=TOLERANCE), (
        "%s drifted: measured %s vs golden %s (tolerance %d%%)"
        % (what, measured, golden, int(TOLERANCE * 100)))


def test_fig7_read_bandwidth_matches_golden():
    golden = {row["request"]: row for row in
              load_golden("fig7_read_bandwidth.csv")}
    result = exp_fig7_read_bandwidth(sizes=[64 * KIB, 1 * MIB],
                                     sweep_bytes=32 * MIB)
    assert result.headers[0] == "request"
    for row in result.rows:
        label = row[0]
        assert label in golden, "size %s missing from golden CSV" % label
        for column, value in zip(result.headers[1:], row[1:]):
            assert_close(value, golden[label][column],
                         "fig7 %s %s" % (label, column))


def test_table3_read_latency_matches_golden():
    golden = {row["config"]: row for row in
              load_golden("table3_read_latency.csv")}
    result = exp_table3_read_latency(samples=8)
    for config_name, _paper, measured in result.rows:
        assert_close(measured, golden[config_name]["measured"],
                     "table3 %s latency" % config_name)
    # The reproduced spread must keep Biscuit's internal path faster.
    assert result.metrics["biscuit_read_us"] < result.metrics["conv_read_us"]
