"""The sharded acceptance sweep: ≥60 seeded cases, scatter-gather results
row-identical (after canonical ordering) to the single-device NDP arm and
the plain-Python reference — including cases where one shard's primary node
is crashed before the query runs (replica failover must be answer-invisible).
"""

import pytest

from repro.testing.differential import run_sharded_sweep, summarize


def test_sharded_differential_sweep_64_cases():
    results = run_sharded_sweep(range(64))
    summary = summarize(results)
    assert summary["cases"] == 64
    # Clean crashes with replication 2 always leave an alive copy, so the
    # only acceptable outcome — crashed primary or not — is a match.
    failures = [r.detail or r.outcome
                for r in results if r.outcome != "match"]
    assert not failures, "\n".join(failures)

    # The sweep must actually exercise what it claims to:
    crash_cases = [r for r in results if r.faults]
    assert len(crash_cases) >= 10, "crash-primary draw never fired"
    assert all(r.outcome == "match" for r in crash_cases)
    # ...failover paths really ran on the crashed-primary cases,
    assert any(r.fault_counters["failovers"] > 0 for r in crash_cases)
    # ...both the single-device and the fleet engines offloaded,
    assert summary["offloaded"] >= 40
    # ...and partition-constraint pruning produced at least one
    # single-shard scatter alongside full-fleet fan-outs.
    fan_outs = sorted(r.fault_counters["max_fan_out"] for r in results)
    assert fan_outs[0] == 1 and fan_outs[-1] >= 4


@pytest.mark.faults
def test_sharded_differential_soak_200_cases():
    results = run_sharded_sweep(range(2000, 2200))
    failures = [r.detail or r.outcome
                for r in results if r.outcome != "match"]
    assert not failures, "\n".join(failures)
    assert summarize(results)["cases"] == 200
