"""SQL under fault storms: the resilient arm of the differential sweep.

Every seeded case replicates its table on a second device, puts an
error-capable fault storm on the primary (uncorrectable bursts, stalls,
possibly a whole-device crash window) and only latency faults on the
replica, then runs the query through the resilient scan driver
(checkpointed retry/resume, hedged reads, replica failover).  The result
must be **byte-identical** to the fault-free plain-Python reference —
``device-error`` is not an acceptable outcome here, unlike the fail-fast
sweep: with a clean replica and a finite storm, recovery must converge.

Failures print a one-line ``REPRO:`` token; replay with
``repro.testing.differential.replay_resilient``.
"""

import pytest

from repro.testing.differential import (
    replay_resilient,
    run_case_resilient,
    run_resilient_sweep,
)


def _injected(result):
    """Total faults injected into this case (primary-side storm)."""
    return sum(v for k, v in result.fault_counters.items()
               if k.endswith("_injected"))


def _assert_all_match(results):
    bad = [r for r in results if r.outcome != "match"]
    assert not bad, "\n".join(
        "%s: %s | %s" % (r.outcome, r.detail, r.repro) for r in bad)


def test_resilient_sweep_50_cases_all_match():
    results = run_resilient_sweep(range(50))
    _assert_all_match(results)
    # The storm must actually bite: a healthy fraction of cases see
    # injected faults, and the recovery machinery must have been used.
    faulted = [r for r in results if _injected(r) > 0]
    assert len(faulted) >= 10
    retries = sum(r.fault_counters.get("driver_retries", 0) for r in results)
    failovers = sum(r.fault_counters.get("driver_failovers", 0)
                    for r in results)
    assert retries > 0
    assert failovers > 0


def test_resilient_case_carries_repro_line():
    result = run_case_resilient(7)
    assert result.repro.startswith("REPRO: seed=7 ")
    assert result.outcome == "match"


def test_resilient_repro_line_replays_identically():
    original = run_case_resilient(11)
    replayed = replay_resilient(original.repro)
    assert replayed.outcome == original.outcome
    assert replayed.detail == original.detail
    assert replayed.fault_counters == original.fault_counters


def test_resilient_sweep_exercises_every_mechanism():
    """Across a window of seeds, each recovery mechanism fires at least once:
    retry, resume-from-checkpoint, device failover, hedging, crash handling.
    """
    totals = {}
    for result in run_resilient_sweep(range(80)):
        assert result.outcome == "match", result.detail
        for key, value in result.fault_counters.items():
            totals[key] = totals.get(key, 0) + value
    assert totals.get("driver_retries", 0) > 0
    assert totals.get("driver_failovers", 0) > 0
    assert totals.get("driver_hedges_fired", 0) > 0
    assert totals.get("driver_hedge_wins", 0) > 0
    assert totals.get("driver_crashes_seen", 0) > 0
    assert totals.get("crashes_injected", 0) > 0
    assert totals.get("uncorrectable_injected", 0) > 0


@pytest.mark.faults
def test_resilient_soak_200_cases():
    """The long soak: 200 seeded storms, zero wrong answers."""
    results = run_resilient_sweep(range(1000, 1200))
    _assert_all_match(results)
    assert sum(1 for r in results if _injected(r) > 0) >= 40
