"""Generators: seed determinism, value shapes, and the REPRO line format."""

import random

import pytest

from repro.db.catalog import TableSchema
from repro.testing.strategies import (
    GENERATOR_VERSION,
    gen_fault_plan,
    gen_query,
    gen_schedule,
    gen_ssd_config,
    gen_table,
    parse_repro,
    repro_line,
)


def test_gen_ssd_config_is_valid_and_deterministic():
    config_a = gen_ssd_config(random.Random(7))
    config_b = gen_ssd_config(random.Random(7))
    assert config_a == config_b
    config_a.validate()


def test_gen_ssd_config_draws_serve_budgets():
    slots = set()
    budgets = set()
    for seed in range(30):
        config = gen_ssd_config(random.Random(seed))
        slots.add(config.serve_app_slots)
        budgets.add(config.serve_dram_budget_bytes)
    assert len(slots) > 1 and len(budgets) > 1


def test_gen_table_is_deterministic():
    schema_a, rows_a = gen_table(random.Random(7))
    schema_b, rows_b = gen_table(random.Random(7))
    assert schema_a == schema_b
    assert rows_a == rows_b
    assert isinstance(schema_a, TableSchema)
    assert 80 <= len(rows_a) <= 400


def test_gen_table_c0_is_unique_row_id():
    _schema, rows = gen_table(random.Random(3))
    ids = [row[0] for row in rows]
    assert ids == list(range(len(rows)))


def test_gen_query_is_deterministic():
    rng = random.Random(11)
    schema, rows = gen_table(rng)
    state = rng.getstate()
    query_a = gen_query(rng, schema, rows)
    rng.setstate(state)
    query_b = gen_query(rng, schema, rows)
    assert repr(query_a) == repr(query_b)
    assert query_a["kind"] in ("filter", "aggregate")


def test_gen_query_covers_both_kinds():
    kinds = set()
    for seed in range(40):
        rng = random.Random(seed)
        schema, rows = gen_table(rng)
        kinds.add(gen_query(rng, schema, rows)["kind"])
    assert kinds == {"filter", "aggregate"}


def test_gen_fault_plan_is_valid():
    for seed in range(40):
        plan = gen_fault_plan(random.Random(seed))
        plan.validate()  # raises on a bad plan


def test_gen_schedule_is_deterministic():
    schedule_a = gen_schedule(random.Random(9))
    schedule_b = gen_schedule(random.Random(9))
    assert schedule_a == schedule_b
    assert schedule_a["companion"] in ("string_search", "pointer_chase")
    assert schedule_a["stagger_us"] >= 0.0


def test_gen_schedule_covers_both_companions():
    companions = {gen_schedule(random.Random(seed))["companion"]
                  for seed in range(20)}
    assert companions == {"string_search", "pointer_chase"}


def test_repro_line_roundtrip():
    for seed, faults in ((0, True), (12345, False), (1 << 29, True)):
        assert parse_repro(repro_line(seed, faults)) == (seed, faults)


def test_repro_line_parses_inside_noise():
    line = "FAILED ...  %s  (rerun me)" % repro_line(77, True)
    assert parse_repro(line) == (77, True)


def test_parse_repro_rejects_garbage():
    with pytest.raises(ValueError):
        parse_repro("not a repro line at all")


def test_parse_repro_rejects_version_mismatch():
    stale = repro_line(5, True).replace(GENERATOR_VERSION, "v0")
    assert GENERATOR_VERSION in repro_line(5, True)
    with pytest.raises(ValueError):
        parse_repro(stale)
