"""Differential harness: agreement, typed failure classes, replay, and the
deliberately-planted-bug check that proves the harness can actually catch a
device-side matcher bug.
"""

import itertools

import pytest

import repro.db.ndp
from repro.testing.differential import (
    replay,
    rows_match,
    run_case,
    run_case_interleaved,
    run_case_perturbed,
    run_sweep,
    summarize,
)


# ------------------------------------------------------------- row comparison
def test_rows_match_ignores_order():
    assert rows_match([(1, "a"), (2, "b")], [(2, "b"), (1, "a")])


def test_rows_match_float_tolerance():
    assert rows_match([(1.0000000000001,)], [(1.0,)])
    assert not rows_match([(1.01,)], [(1.0,)])
    assert rows_match([(3,)], [(3.0,)])  # int vs float sum representations


def test_rows_match_detects_differences():
    assert not rows_match([(1,)], [(1,), (2,)])
    assert not rows_match([(1, "a")], [(1, "b")])


# ----------------------------------------------------------------- agreement
def test_small_sweep_without_faults_all_match():
    results = run_sweep(range(10), faults=False)
    assert [r.outcome for r in results] == ["match"] * 10
    assert summarize(results)["offloaded"] > 0


def test_small_sweep_with_faults_never_mismatches():
    results = run_sweep(range(200, 212), faults=True)
    assert all(r.outcome in ("match", "device-error") for r in results)
    assert summarize(results)["faults_injected"] > 0


def test_device_error_outcome_is_typed_with_context():
    # Seed 2063 draws the harsh profile and loses a page to retry exhaustion
    # (stable: the whole case derives from the seed; re-picked for the v3
    # generator stream).
    result = run_case(2063, faults=True)
    assert result.outcome == "device-error"
    assert "channel=" in result.detail
    assert result.fault_counters["ecc_injected"] > 0


def test_repro_line_replays_identically():
    original = run_case(42, faults=True)
    replayed = replay(original.repro)
    assert replayed.outcome == original.outcome
    assert replayed.detail == original.detail
    assert replayed.offloaded == original.offloaded
    assert replayed.fault_counters == original.fault_counters


def test_every_result_carries_a_repro_line():
    for result in run_sweep(range(3), faults=False):
        assert result.repro.startswith("REPRO: seed=")


# ------------------------------------------------------ concurrent schedules
def test_interleaving_does_not_change_results():
    """NDP vs host vs reference, with a second app sharing the device.

    Each seeded case re-runs the differential query while a companion
    SSDlet application (drawn by gen_schedule) runs concurrently on the
    same device.  Concurrency may reorder device work arbitrarily; the row
    sets must not change.
    """
    results = [run_case_interleaved(seed) for seed in range(40, 52)]
    assert [r.outcome for r in results] == ["match"] * len(results)
    companions = {r.detail.split()[-1] for r in results}
    assert companions == {"string_search", "pointer_chase"}
    assert any(r.offloaded for r in results)


def test_perturbed_tie_breaking_does_not_change_results():
    """The interleaving-sanitizer arm: each case runs twice, the replay
    reversing pop order inside every provably order-free same-timestamp
    batch.  Every case must stay hazard-free and bit-identical, and the
    perturbation must actually engage (batches reversed) somewhere in the
    window — an arm that never reverses anything gates nothing."""
    results = [run_case_perturbed(seed) for seed in range(4)]
    assert [r.outcome for r in results] == ["match"] * len(results)
    assert sum(r.fault_counters["reversed"] for r in results) > 0
    assert all("REPRO:" in r.repro for r in results)


# ------------------------------------------------------------- planted bug
def test_planted_matcher_bug_is_caught(monkeypatch):
    """Corrupt the device-side predicate compiler; the sweep must notice.

    The wrapper drops every 7th matching row, which only affects the NDP
    path (the host executor and the planner import compile_expr
    themselves), so any detected mismatch is the differential check — not
    the reference — doing the work.
    """
    real = repro.db.ndp.compile_expr
    counter = itertools.count(1)

    def buggy_compile(expr, positions):
        fn = real(expr, positions)

        def wrapped(row):
            value = fn(row)
            if value and next(counter) % 7 == 0:
                return False
            return value

        return wrapped

    monkeypatch.setattr(repro.db.ndp, "compile_expr", buggy_compile)
    # Seed window re-picked for the v3 generator stream: these cases keep the
    # wrapper on the *predicate* path (a min/max value expression corrupted to
    # bool would crash instead of mismatching).
    results = run_sweep(range(15, 30), faults=False)
    mismatches = [r for r in results if r.outcome == "mismatch"]
    assert mismatches, "harness failed to catch the planted device-side bug"
    assert all("REPRO:" in r.detail for r in mismatches)
