"""Fault injector: determinism, counters, and controller retry behaviour."""

import pytest

from repro.core.errors import EccError, UncorrectableReadError
from repro.sim.engine import Simulator
from repro.ssd.config import SSDConfig
from repro.ssd.device import SSDDevice
from repro.testing.faults import Fault, FaultInjector, FaultPlan


def make_device(retry_limit=2, backoff_us=10.0, pages=32):
    sim = Simulator()
    config = SSDConfig(
        channels=2, dies_per_channel=2,
        read_retry_limit=retry_limit, read_retry_backoff_us=backoff_us,
    )
    device = SSDDevice(sim, config)
    sim.run(sim.process(device.controller.write_pages(list(range(pages)))))
    return sim, device


def read(sim, device, lpns):
    return sim.run(sim.process(device.internal_read(list(lpns))))


# ------------------------------------------------------------------ the plan
def test_plan_rejects_negative_rates():
    with pytest.raises(ValueError):
        FaultInjector(FaultPlan(ecc_rate=-0.1))


def test_plan_rejects_rates_past_one():
    with pytest.raises(ValueError):
        FaultInjector(FaultPlan(ecc_rate=0.7, spike_rate=0.7))


def test_plan_rejects_negative_delays():
    with pytest.raises(ValueError):
        FaultInjector(FaultPlan(spike_us=-1.0))


def test_any_faults_flag():
    assert not FaultPlan(seed=7).any_faults
    assert FaultPlan(ecc_rate=0.01).any_faults


# ------------------------------------------------------------------ drawing
def test_same_plan_same_draw_sequence():
    plan = FaultPlan(seed=42, ecc_rate=0.2, uncorrectable_rate=0.05,
                     spike_rate=0.1, stall_rate=0.1)
    first = FaultInjector(plan)
    second = FaultInjector(plan)
    draws_a = [first.draw_read(i % 4, i) for i in range(500)]
    draws_b = [second.draw_read(i % 4, i) for i in range(500)]
    assert draws_a == draws_b
    assert first.counters() == second.counters()
    assert first.faults_injected > 0


def test_different_seeds_diverge():
    base = dict(ecc_rate=0.2, spike_rate=0.2, stall_rate=0.2)
    first = FaultInjector(FaultPlan(seed=1, **base))
    second = FaultInjector(FaultPlan(seed=2, **base))
    draws_a = [first.draw_read(0) for _ in range(200)]
    draws_b = [second.draw_read(0) for _ in range(200)]
    assert draws_a != draws_b


def test_channel_filter_skips_other_channels():
    injector = FaultInjector(FaultPlan(seed=3, ecc_rate=1.0, channels=(1,)))
    assert injector.draw_read(0) is None
    assert injector.reads_seen == 0  # filtered channels consume no draws
    assert injector.draw_read(1) == Fault("ecc")
    assert injector.reads_seen == 1


def test_counters_add_up():
    injector = FaultInjector(FaultPlan(
        seed=11, ecc_rate=0.2, uncorrectable_rate=0.1,
        spike_rate=0.2, stall_rate=0.2))
    for index in range(400):
        injector.draw_read(index % 8)
    counts = injector.counters()
    assert counts["reads_seen"] == 400
    assert injector.faults_injected == (
        counts["ecc_injected"] + counts["uncorrectable_injected"]
        + counts["spikes_injected"] + counts["stalls_injected"])
    # At these rates every kind should have fired at least once in 400 draws.
    assert counts["ecc_injected"] > 0
    assert counts["uncorrectable_injected"] > 0
    assert counts["spikes_injected"] > 0
    assert counts["stalls_injected"] > 0


# ------------------------------------------------- end-to-end through reads
def test_persistent_ecc_exhausts_retries_and_is_typed():
    sim, device = make_device(retry_limit=2)
    device.attach_fault_injector(FaultInjector(FaultPlan(seed=5, ecc_rate=1.0)))
    with pytest.raises(UncorrectableReadError) as info:
        read(sim, device, [0])
    assert info.value.channel is not None
    assert info.value.page is not None
    stats = device.controller.stats
    assert stats.read_retries == 3  # initial attempt + 2 retries, all failed
    assert stats.unrecoverable_reads == 1
    assert stats.recovered_reads == 0


def test_direct_uncorrectable_is_never_retried():
    sim, device = make_device(retry_limit=3)
    device.attach_fault_injector(
        FaultInjector(FaultPlan(seed=5, uncorrectable_rate=1.0)))
    with pytest.raises(UncorrectableReadError):
        read(sim, device, [0])
    assert device.controller.stats.read_retries == 0
    assert device.controller.stats.unrecoverable_reads == 1


def test_transient_ecc_recovers_via_retry():
    sim, device = make_device(retry_limit=3)
    device.attach_fault_injector(FaultInjector(FaultPlan(seed=9, ecc_rate=0.3)))
    read(sim, device, range(32))
    stats = device.controller.stats
    assert stats.read_retries > 0
    assert stats.recovered_reads > 0
    assert stats.unrecoverable_reads == 0


def test_retry_backoff_costs_time():
    sim_a, device_a = make_device(backoff_us=0.0)
    device_a.attach_fault_injector(FaultInjector(FaultPlan(seed=9, ecc_rate=0.3)))
    read(sim_a, device_a, range(32))

    sim_b, device_b = make_device(backoff_us=200.0)
    device_b.attach_fault_injector(FaultInjector(FaultPlan(seed=9, ecc_rate=0.3)))
    read(sim_b, device_b, range(32))

    # Same seed → same retry pattern; only the backoff differs.
    assert (device_b.controller.stats.read_retries
            == device_a.controller.stats.read_retries)
    assert sim_b.now > sim_a.now


def test_latency_spike_slows_reads():
    sim_clean, device_clean = make_device()
    read(sim_clean, device_clean, range(32))

    sim_spiky, device_spiky = make_device()
    device_spiky.attach_fault_injector(
        FaultInjector(FaultPlan(seed=1, spike_rate=1.0, spike_us=500.0)))
    read(sim_spiky, device_spiky, range(32))
    assert sim_spiky.now > sim_clean.now


def test_channel_stall_slows_reads():
    sim_clean, device_clean = make_device()
    read(sim_clean, device_clean, range(32))

    sim_stalled, device_stalled = make_device()
    device_stalled.attach_fault_injector(
        FaultInjector(FaultPlan(seed=1, stall_rate=1.0, stall_us=1000.0)))
    read(sim_stalled, device_stalled, range(32))
    assert sim_stalled.now > sim_clean.now


def test_faults_never_corrupt_read_content():
    # Timing faults delay reads but the logical content store is untouched.
    sim, device = make_device()
    device.store_page(3, b"payload")
    device.attach_fault_injector(FaultInjector(FaultPlan(
        seed=2, ecc_rate=0.2, spike_rate=0.3, stall_rate=0.3)))
    read(sim, device, range(32))
    assert device.load_page(3) == b"payload"


def test_detach_restores_clean_reads():
    sim, device = make_device()
    device.attach_fault_injector(FaultInjector(FaultPlan(seed=5, ecc_rate=1.0)))
    with pytest.raises(UncorrectableReadError):
        read(sim, device, [0])
    device.attach_fault_injector(None)
    read(sim, device, range(32))  # no exception
