"""Shared fixtures: fresh systems plus a session-scoped tiny TPC-H database."""

import pytest

from repro.db.planner import create_engine
from repro.db.executor import ExecutionMode
from repro.db.tpch.datagen import generate_tables, load_tpch
from repro.host.platform import System

TINY_SF = 0.002


@pytest.fixture
def system():
    """A fresh simulated platform."""
    return System()


@pytest.fixture(scope="session")
def tpch_data():
    """Raw generated TPC-H rows at the test scale factor."""
    return generate_tables(TINY_SF)


@pytest.fixture(scope="session")
def tpch_system():
    """One platform with TPC-H loaded, shared across DB tests.

    Tests must not mutate the filesystem; engines are created per test.
    """
    system = System()
    db = load_tpch(system.fs, TINY_SF)
    return system, db


@pytest.fixture
def tpch_engines(tpch_system):
    """(conv, biscuit) engines over the shared TPC-H database."""
    system, db = tpch_system
    return (
        create_engine(system, db, ExecutionMode.CONV),
        create_engine(system, db, ExecutionMode.BISCUIT),
    )
