"""Wordcount (the paper's working example): exact correctness."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.wordcount import run_wordcount, tokenize
from repro.host.platform import System


def expected_counts(text: str):
    return dict(Counter(text.lower().split()))


def run(text: str, mappers: int = 2):
    system = System()
    system.fs.install("/in.txt", text.encode())
    return run_wordcount(system, "/in.txt", num_mappers=mappers), system


def test_simple_text():
    counts, _ = run("the cat and the hat and the bat")
    assert counts == {"the": 3, "and": 2, "cat": 1, "hat": 1, "bat": 1}


def test_case_folding():
    counts, _ = run("Apple apple APPLE")
    assert counts == {"apple": 3}


def test_single_word():
    counts, _ = run("solo")
    assert counts == {"solo": 1}


def test_empty_text_single_space():
    counts, _ = run(" ")
    assert counts == {}


@pytest.mark.parametrize("mappers", [1, 2, 3, 5])
def test_mapper_count_invariance(mappers):
    text = "alpha beta gamma delta " * 57
    counts, _ = run(text, mappers)
    assert counts == expected_counts(text)


def test_word_straddling_partition_boundary():
    """A word split across the mapper byte boundary is counted once."""
    # Two mappers split at len//2; craft a word exactly straddling it.
    text = "aa " * 100 + "straddler" + " bb" * 100
    counts, _ = run(text, 2)
    assert counts == expected_counts(text)


def test_more_mappers_than_words():
    counts, _ = run("one two", 5)
    assert counts == {"one": 1, "two": 1}


def test_simulated_time_advances():
    _, system = run("some words here " * 50)
    assert system.sim.now > 0


def test_tokenize_handles_whitespace_kinds():
    assert tokenize(b"a\tb\nc  d\r\ne") == ["a", "b", "c", "d", "e"]


@settings(max_examples=10, deadline=None)
@given(st.lists(
    st.text(alphabet="abcxyz", min_size=1, max_size=8),
    min_size=1, max_size=120,
))
def test_property_matches_reference_counter(words):
    """Device wordcount equals collections.Counter for any word list."""
    text = " ".join(words)
    counts, _ = run(text, 3)
    assert counts == expected_counts(text)
