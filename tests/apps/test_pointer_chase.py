"""Pointer chasing: Conv/Biscuit value equivalence and latency calibration."""

import pytest

from repro.apps.pointer_chase import (
    DEVICE_HOP_US,
    HOST_HOP_US,
    build_analytic_graph,
    build_exact_graph,
    run_biscuit,
    run_conv,
)
from repro.host.platform import System


def test_exact_traversals_agree(system):
    graph = build_exact_graph(system, "/g.bin", 500)
    finals_conv, _ = run_conv(system, graph, 3, 50)
    finals_bisc, _ = run_biscuit(system, graph, 3, 50)
    assert finals_conv == finals_bisc
    assert len(finals_conv) == 3


def test_walks_are_deterministic(system):
    graph = build_exact_graph(system, "/g.bin", 300)
    first, _ = run_conv(system, graph, 2, 30)
    second, _ = run_conv(system, graph, 2, 30)
    assert first == second


def test_analytic_traversals_agree(system):
    graph = build_analytic_graph(system, "/g.bin", 1_000_000)
    finals_conv, _ = run_conv(system, graph, 2, 40)
    finals_bisc, _ = run_biscuit(system, graph, 2, 40)
    assert finals_conv == finals_bisc


def test_conv_per_hop_latency_is_94us(system):
    graph = build_analytic_graph(system, "/g.bin", 100_000)
    _, elapsed = run_conv(system, graph, 2, 250)
    per_hop_us = elapsed / 500 * 1e6
    # Table III read (90.0) + host per-hop processing (4.0).
    assert abs(per_hop_us - (90.0 + HOST_HOP_US)) < 1.0


def test_biscuit_per_hop_approaches_84us(system):
    graph = build_analytic_graph(system, "/g.bin", 100_000)
    _, elapsed = run_biscuit(system, graph, 2, 500)
    per_hop_us = elapsed / 1000 * 1e6
    # 75.9 + 8.4 plus amortized app setup.
    assert 75.9 + DEVICE_HOP_US < per_hop_us < 75.9 + DEVICE_HOP_US + 8


def test_conv_degrades_under_load_biscuit_does_not():
    loaded = System(background_threads=24)
    graph = build_analytic_graph(loaded, "/g.bin", 100_000)
    _, conv_loaded = run_conv(loaded, graph, 1, 200)
    _, bisc_loaded = run_biscuit(loaded, graph, 1, 200)

    idle = System()
    graph_idle = build_analytic_graph(idle, "/g.bin", 100_000)
    _, conv_idle = run_conv(idle, graph_idle, 1, 200)
    _, bisc_idle = run_biscuit(idle, graph_idle, 1, 200)

    assert conv_loaded > 1.08 * conv_idle
    assert abs(bisc_loaded - bisc_idle) / bisc_idle < 0.02


def test_successor_stays_in_range(system):
    graph = build_analytic_graph(system, "/g.bin", 1234)
    for node in (0, 617, 1233):
        for hop in range(20):
            assert 0 <= graph.analytic_successor(node, hop) < 1234


def test_exact_graph_record_layout(system):
    graph = build_exact_graph(system, "/g.bin", 64)
    inode = system.fs.lookup("/g.bin")
    assert inode.size == 64 * 64  # 64-byte records
    record = system.fs.read_range(inode, 0, 64)
    degree = int.from_bytes(record[:2], "little")
    assert 1 <= degree <= 15
