"""Scale-up sharded search: correctness and scaling behavior."""

import pytest

from repro.apps.distributed_search import (
    install_sharded_weblog,
    run_biscuit_sharded,
    run_conv_sharded,
)
from repro.host.platform import System
from repro.sim.units import MIB


def test_multi_ssd_system_wiring():
    system = System(num_ssds=3)
    assert system.num_ssds == 3
    assert len(system.filesystems) == 3
    assert system.device is system.devices[0]
    assert all(d.sim is system.sim for d in system.devices)


def test_zero_ssds_rejected():
    with pytest.raises(ValueError):
        System(num_ssds=0)


def test_shards_installed_on_every_device():
    system = System(num_ssds=4)
    install_sharded_weblog(system, 64 * MIB, "KEY")
    for fs in system.filesystems:
        inode = fs.lookup("/logs/shard.log")
        assert inode.size == 16 * MIB


def test_biscuit_counts_are_per_device_deterministic():
    system = System(num_ssds=2)
    install_sharded_weblog(system, 32 * MIB, "KEY", page_match_probability=0.1)
    first, _ = run_biscuit_sharded(system, "KEY")
    second, _ = run_biscuit_sharded(system, "KEY")
    assert first == second > 0


def test_biscuit_scales_with_devices():
    def throughput(num_ssds):
        system = System(num_ssds=num_ssds)
        total = 32 * MIB * num_ssds
        install_sharded_weblog(system, total, "KEY")
        _, elapsed = run_biscuit_sharded(system, "KEY")
        return total / elapsed

    single = throughput(1)
    quad = throughput(4)
    assert quad > 3.0 * single


def test_fabric_caps_conv_throughput():
    def conv_rate(fabric):
        system = System(num_ssds=8, fabric_bytes_per_sec=fabric)
        total = 16 * MIB * 8
        install_sharded_weblog(system, total, "KEY")
        _, elapsed = run_conv_sharded(system, "KEY")
        return total / elapsed

    capped = conv_rate(1.0e9)
    free = conv_rate(64e9)
    assert capped <= 1.05e9
    assert free > 2 * capped


def test_per_device_files_are_independent():
    system = System(num_ssds=2)
    system.filesystems[0].install("/only-here", b"zero")
    assert system.filesystems[0].exists("/only-here")
    assert not system.filesystems[1].exists("/only-here")


def test_ssd_facade_binds_to_device_index():
    from repro.core import SSD
    system = System(num_ssds=2)
    first = SSD(system, device_index=0)
    second = SSD(system, device_index=1)
    assert first.runtime.device is system.devices[0]
    assert second.runtime.device is system.devices[1]
    assert first.dev_path == "/dev/nvme0n1"
    assert second.dev_path == "/dev/nvme1n1"
