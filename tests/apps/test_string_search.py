"""String search: exact counts, load behavior, partitioning edges."""

from repro.apps.string_search import (
    boyer_moore_count,
    install_weblog,
    install_weblog_analytic,
    run_biscuit_search,
    run_conv_search,
)
from repro.host.platform import System
from repro.sim.units import MIB


def exact_setup(size=1 * MIB, keyword="NEEDLE42"):
    system = System()
    inode, _ = install_weblog(system, "/w.log", size, keyword)
    truth = system.fs.read_range(inode, 0, inode.size).count(keyword.encode())
    return system, truth


def test_conv_counts_exactly():
    system, truth = exact_setup()
    count, elapsed = run_conv_search(system, "/w.log", "NEEDLE42")
    assert count == truth
    assert elapsed > 0


def test_biscuit_counts_exactly():
    system, truth = exact_setup()
    count, _ = run_biscuit_search(system, "/w.log", "NEEDLE42")
    assert count == truth


def test_keyword_absent():
    system, _ = exact_setup()
    assert run_conv_search(system, "/w.log", "ZZZNOPEZZZ")[0] == 0
    assert run_biscuit_search(system, "/w.log", "ZZZNOPEZZZ")[0] == 0


def test_single_searcher_still_correct():
    system, truth = exact_setup(size=256 * 1024)
    count, _ = run_biscuit_search(system, "/w.log", "NEEDLE42", num_searchers=1)
    assert count == truth


def test_more_searchers_than_pages():
    system = System()
    inode, _ = install_weblog(system, "/tiny.log", 6000, "NEEDLE42", hit_rate=0.2)
    truth = system.fs.read_range(inode, 0, inode.size).count(b"NEEDLE42")
    count, _ = run_biscuit_search(system, "/tiny.log", "NEEDLE42", num_searchers=8)
    assert count == truth


def test_searchers_partition_without_overlap():
    """Two different worker counts must agree exactly (no double counting)."""
    system, truth = exact_setup(size=512 * 1024)
    two, _ = run_biscuit_search(system, "/w.log", "NEEDLE42", num_searchers=2)
    five, _ = run_biscuit_search(system, "/w.log", "NEEDLE42", num_searchers=5)
    assert two == five == truth


def test_conv_slows_under_load_biscuit_does_not():
    system = System()
    install_weblog_analytic(system, "/big.log", 64 * MIB, "KEY", 0.02)
    _, conv_idle = run_conv_search(system, "/big.log", "KEY")
    _, bisc_idle = run_biscuit_search(system, "/big.log", "KEY")
    system.set_background_load(24)
    _, conv_loaded = run_conv_search(system, "/big.log", "KEY")
    _, bisc_loaded = run_biscuit_search(system, "/big.log", "KEY")
    assert conv_loaded > 1.4 * conv_idle
    assert abs(bisc_loaded - bisc_idle) / bisc_idle < 0.05


def test_analytic_counts_deterministic():
    system = System()
    install_weblog_analytic(system, "/a.log", 16 * MIB, "KEY", 0.05)
    first, _ = run_biscuit_search(system, "/a.log", "KEY")
    second, _ = run_biscuit_search(system, "/a.log", "KEY")
    assert first == second > 0


def test_boyer_moore_count_reference():
    assert boyer_moore_count(b"abcabcab", b"abc") == 2
    assert boyer_moore_count(b"", b"x") == 0


def test_weblog_generator_plants_keyword():
    system = System()
    inode, planted = install_weblog(system, "/p.log", 200_000, "MARKER", hit_rate=0.05)
    data = system.fs.read_range(inode, 0, inode.size)
    assert data.count(b"MARKER") == planted > 0
