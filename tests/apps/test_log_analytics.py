"""Web-log analytics: hybrid SSDlet+HostTask pipeline, and the
"Is NDP for all?" lesson (Section VI)."""

import pytest

from repro.apps.log_analytics import (
    _top_k,
    install_access_log,
    run_biscuit,
    run_conv,
)
from repro.host.platform import System


@pytest.fixture(scope="module")
def small_log():
    system = System()
    _, truth = install_access_log(system, "/logs/a.log", 8000)
    return system, truth


def test_conv_matches_ground_truth(small_log):
    system, truth = small_log
    top, _ = run_conv(system, "/logs/a.log")
    assert top == _top_k(truth, 10)


def test_biscuit_matches_conv(small_log):
    system, truth = small_log
    conv_top, _ = run_conv(system, "/logs/a.log")
    biscuit_top, _ = run_biscuit(system, "/logs/a.log")
    assert biscuit_top == conv_top


def test_parser_count_invariance(small_log):
    system, _ = small_log
    two, _ = run_biscuit(system, "/logs/a.log", num_parsers=2)
    five, _ = run_biscuit(system, "/logs/a.log", num_parsers=5)
    assert two == five


def test_filtered_analytics_matches(small_log):
    system, _ = small_log
    needle = '/item/7"'
    conv_top, _ = run_conv(system, "/logs/a.log", needle=needle)
    biscuit_top, _ = run_biscuit(system, "/logs/a.log", needle=needle)
    assert conv_top == biscuit_top


def test_full_parse_is_not_an_ndp_fit(small_log):
    """Parse-heavy work on slow device cores loses: Section VI's point that
    not all applications benefit from NDP."""
    system, _ = small_log
    _, conv_s = run_conv(system, "/logs/a.log")
    _, biscuit_s = run_biscuit(system, "/logs/a.log")
    assert biscuit_s > conv_s


def test_filtered_analytics_is_an_ndp_fit():
    """With the matcher discarding non-matching data at wire speed, the
    same pipeline wins — high filtering ratio, light compute."""
    system = System()
    install_access_log(system, "/logs/big.log", 300_000, seed=2)
    needle = '/item/777"'
    conv_top, conv_s = run_conv(system, "/logs/big.log", needle=needle)
    biscuit_top, biscuit_s = run_biscuit(system, "/logs/big.log", needle=needle)
    assert conv_top == biscuit_top
    assert biscuit_s < conv_s


def test_top_k_ordering():
    stats = {"a": (5, 100), "b": (9, 10), "c": (5, 50)}
    assert _top_k(stats, 2) == [("b", 9, 10), ("a", 5, 100)]
