"""StreamBench background load generator."""

import pytest

from repro.apps.streambench import StreamBench, with_background_load
from repro.host.platform import System


def test_start_stop_sets_contention(system):
    bench = StreamBench(system, 12)
    bench.start()
    assert system.cpu.background_threads == 12
    bench.stop()
    assert system.cpu.background_threads == 0


def test_idempotent_start_stop(system):
    bench = StreamBench(system, 6)
    bench.start()
    bench.start()
    bench.stop()
    bench.stop()
    assert system.cpu.background_threads == 0


def test_negative_threads_rejected(system):
    with pytest.raises(ValueError):
        StreamBench(system, -1)


def test_context_manager(system):
    with with_background_load(system, 18):
        assert system.cpu.background_threads == 18
    assert system.cpu.background_threads == 0


def test_occupy_cores_spawns_and_stops_fibers(system):
    bench = StreamBench(system, 4, occupy_cores=True)
    bench.start()
    system.sim.run(until=5_000_000)  # let hogs run 5 ms
    assert system.cpu.cores.in_use == 4
    bench.stop()
    system.sim.run()
    assert system.cpu.cores.in_use == 0
