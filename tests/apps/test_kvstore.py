"""SkimpyStash-style KV store: correctness and traversal behavior."""

import pytest

from repro.apps.kvstore import KVStore, build_store
from repro.host.platform import System


@pytest.fixture
def store(system):
    return build_store(system, num_items=600, buckets=32)


def timed(system, fiber):
    start = system.sim.now_s
    value = system.run_fiber(fiber)
    return value, system.sim.now_s - start


def test_build_layout(system, store):
    inode = system.fs.lookup("/kv/store.log")
    assert inode.size > 0
    assert store.record_count == 600
    # Every bucket head points inside the log.
    for head in store.directory:
        assert head == 0xFFFFFFFFFFFFFFFF or head < inode.size


def test_conv_lookup_finds_values(system, store):
    keys = [b"key-%08d" % i for i in (0, 1, 599)]
    results, _ = timed(system, store.get_conv(keys))
    assert all(results[k] is not None for k in keys)


def test_conv_lookup_miss(system, store):
    results, _ = timed(system, store.get_conv([b"nope"]))
    assert results[b"nope"] is None


def test_biscuit_matches_conv(system, store):
    keys = [b"key-%08d" % i for i in range(0, 600, 13)] + [b"ghost"]
    conv, _ = timed(system, store.get_conv(keys))
    biscuit, _ = timed(system, store.get_biscuit(keys))
    assert conv == biscuit


def test_overwritten_key_returns_latest(system):
    items = [(b"dup", b"old"), (b"other", b"x"), (b"dup", b"new")]
    store = KVStore.build(system, "/kv/dup.log", items, buckets=4)
    results, _ = timed(system, store.get_conv([b"dup"]))
    assert results[b"dup"] == b"new"


def test_chain_walk_costs_reads(system, store):
    """Deep chains (many records per bucket) cost more than shallow ones."""
    shallow = build_store(system, 64, buckets=64, path="/kv/shallow.log")
    deep = build_store(system, 64, buckets=1, path="/kv/deep.log")
    key = [b"key-%08d" % 0]  # first-inserted: at the *end* of the chain
    _, shallow_s = timed(system, shallow.get_conv(key))
    _, deep_s = timed(system, deep.get_conv(key))
    assert deep_s > 10 * shallow_s


def test_biscuit_faster_than_conv(system, store):
    keys = [b"key-%08d" % i for i in range(0, 600, 5)]
    _, conv_s = timed(system, store.get_conv(keys))
    _, biscuit_s = timed(system, store.get_biscuit(keys))
    assert biscuit_s < conv_s


def test_batching_amortizes_ports(system, store):
    keys = [b"key-%08d" % i for i in range(120)]
    _, big_batches = timed(system, store.get_biscuit(keys, batch=64))
    _, tiny_batches = timed(system, store.get_biscuit(keys, batch=2))
    assert big_batches < tiny_batches


def test_empty_key_list(system, store):
    conv, _ = timed(system, store.get_conv([]))
    biscuit, _ = timed(system, store.get_biscuit([]))
    assert conv == biscuit == {}
