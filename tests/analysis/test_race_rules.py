"""Static interleaving rules RPR301-RPR304 (repro.analysis.races)."""

import ast
import textwrap

from repro.analysis.linter import lint_file
from repro.analysis.races import check_races


def findings_for(source):
    tree = ast.parse(textwrap.dedent(source))
    return check_races(tree, "case.py")


def rules_for(source):
    return [finding.rule for finding in findings_for(source)]


# ---------------------------------------------------------------- RPR301
def test_rpr301_flags_stale_read_modify_write():
    rules = rules_for("""\
        class Counter:
            def run(self, sim):
                count = self.count
                yield sim.timeout(10)
                self.count = count + 1
    """)
    assert rules == ["RPR301"]


def test_rpr301_reports_the_shared_attribute_and_binding_line():
    finding = findings_for("""\
        class Counter:
            def run(self, sim):
                count = self.count
                yield sim.timeout(10)
                self.count = count + 1
    """)[0]
    assert "self.count" in finding.message
    assert "line 3" in finding.message
    assert finding.line == 5


def test_rpr301_quiet_when_reread_after_yield():
    rules = rules_for("""\
        class Counter:
            def run(self, sim):
                count = self.count
                yield sim.timeout(10)
                count = self.count
                self.count = count + 1
    """)
    assert rules == []


def test_rpr301_quiet_without_intervening_yield():
    rules = rules_for("""\
        class Counter:
            def run(self, sim):
                count = self.count
                self.count = count + 1
                yield sim.timeout(10)
    """)
    assert rules == []


def test_rpr301_quiet_on_direct_augmented_write():
    # self.count += 1 has no stale local; it re-reads at the write site.
    rules = rules_for("""\
        class Counter:
            def run(self, sim):
                yield sim.timeout(10)
                self.count += 1
    """)
    assert rules == []


# ---------------------------------------------------------------- RPR302
def test_rpr302_flags_mutation_after_put():
    rules = rules_for("""\
        def run(self, sim, queue):
            packet = []
            queue.put(packet)
            packet.append(1)
            yield sim.timeout(10)
    """)
    assert rules == ["RPR302"]


def test_rpr302_flags_assignment_into_handed_off_object():
    rules = rules_for("""\
        def run(self, sim, queue):
            packet = make_packet()
            queue.put(packet)
            packet.header = 1
            yield sim.timeout(10)
    """)
    assert rules == ["RPR302"]


def test_rpr302_quiet_when_rebound_before_mutation():
    rules = rules_for("""\
        def run(self, sim, queue):
            packet = make_packet()
            queue.put(packet)
            packet = make_packet()
            packet.append(1)
            yield sim.timeout(10)
    """)
    assert rules == []


def test_rpr302_quiet_when_mutated_before_put():
    rules = rules_for("""\
        def run(self, sim, queue):
            packet = []
            packet.append(1)
            queue.put(packet)
            yield sim.timeout(10)
    """)
    assert rules == []


# ---------------------------------------------------------------- RPR303
def test_rpr303_flags_acquire_without_finally():
    rules = rules_for("""\
        def run(self, sim):
            yield self.bus.request()
            yield sim.timeout(10)
            self.bus.release()
    """)
    assert rules == ["RPR303"]


def test_rpr303_flags_prebuilt_request_event():
    rules = rules_for("""\
        def run(self, sim):
            grant = self.bus.request()
            yield grant
            yield sim.timeout(10)
            self.bus.release()
    """)
    assert rules == ["RPR303"]


def test_rpr303_quiet_with_try_finally():
    rules = rules_for("""\
        def run(self, sim):
            yield self.bus.request()
            try:
                yield sim.timeout(10)
            finally:
                self.bus.release()
    """)
    assert rules == []


def test_rpr303_quiet_when_released_before_next_wait():
    rules = rules_for("""\
        def run(self, sim):
            yield self.bus.request()
            self.bus.release()
            yield sim.timeout(10)
    """)
    assert rules == []


def test_rpr303_quiet_on_acquire_never_released_here():
    # Hold-until-death fibers (release elsewhere) are out of scope: the
    # rule needs a release in the same function to know who owns the hold.
    rules = rules_for("""\
        def run(self, sim):
            yield self.bus.request()
            yield sim.timeout(10)
    """)
    assert rules == []


# ---------------------------------------------------------------- RPR304
def test_rpr304_flags_if_guarded_condition_wait():
    rules = rules_for("""\
        class Pump:
            def run(self, sim):
                if self.queue_empty:
                    yield self.wakeup.wait()
                    self.queue_empty = False
                yield sim.timeout(10)
    """)
    assert rules == ["RPR304"]


def test_rpr304_flags_wait_on_prebuilt_event():
    rules = rules_for("""\
        class Pump:
            def run(self, sim):
                if self.idle:
                    yield self.wakeup
                    self.drain(self.idle)
    """)
    assert rules == ["RPR304"]


def test_rpr304_quiet_with_while_loop():
    rules = rules_for("""\
        class Pump:
            def run(self, sim):
                while self.queue_empty:
                    yield self.wakeup.wait()
                self.queue_empty = False
    """)
    assert rules == []


def test_rpr304_quiet_when_wait_is_a_plain_timer():
    # A timeout always fires; there is no condition to re-check.
    rules = rules_for("""\
        class Pump:
            def run(self, sim):
                if self.queue_empty:
                    yield sim.timeout(10)
                    self.queue_empty = False
    """)
    assert rules == []


def test_rpr304_quiet_when_state_unused_after_wait():
    rules = rules_for("""\
        class Pump:
            def run(self, sim):
                if self.queue_empty:
                    yield self.wakeup.wait()
                yield sim.timeout(10)
    """)
    assert rules == []


# ------------------------------------------------------------- integration
def test_rules_only_apply_to_generators():
    # Plain functions are not fibers: no yield boundary, no interleaving.
    rules = rules_for("""\
        class Counter:
            def bump(self):
                count = self.count
                self.count = count + 1
    """)
    assert rules == []


def test_noqa_waives_race_rules(tmp_path):
    path = tmp_path / "waived.py"
    path.write_text(textwrap.dedent("""\
        def run(self, sim):
            yield self.bus.request()
            yield sim.timeout(10)  # repro: noqa RPR303 -- never interrupted
            self.bus.release()
    """))
    # The finding anchors at the acquire; waive there instead.
    assert [f.rule for f in lint_file(str(path))] == ["RPR303"]
    path.write_text(textwrap.dedent("""\
        def run(self, sim):
            yield self.bus.request()  # repro: noqa RPR303 -- never interrupted
            yield sim.timeout(10)
            self.bus.release()
    """))
    assert lint_file(str(path)) == []


def test_findings_carry_provenance_and_json_parity():
    finding = findings_for("""\
        def run(self, sim):
            yield self.bus.request()
            yield sim.timeout(10)
            self.bus.release()
    """)[0]
    assert finding.path == "case.py"
    assert finding.line == 2
    payload = finding.to_json()
    assert payload["rule"] == "RPR303"
    assert payload["line"] == 2
    assert "case.py:2:" in finding.render()
