"""Static-analysis subsystem tests (graph verifier + lint suite + CLI)."""
