"""CLI behavior: exit codes, JSON schema, rule catalogue, waiver audit."""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.analysis import JSON_SCHEMA_VERSION, rule_ids
from repro.analysis.__main__ import main

CLEAN_SOURCE = textwrap.dedent("""\
    import random

    def simulate(sim, seed, delay_ns=100):
        rng = random.Random(seed)
        yield sim.timeout(delay_ns + rng.randrange(10))
""")

DIRTY_SOURCE = textwrap.dedent("""\
    import time

    started = time.time()
    for item in {1, 2}:
        print(item)
""")


@pytest.fixture
def clean_tree(tmp_path):
    (tmp_path / "clean.py").write_text(CLEAN_SOURCE)
    return tmp_path


@pytest.fixture
def dirty_tree(tmp_path):
    (tmp_path / "dirty.py").write_text(DIRTY_SOURCE)
    return tmp_path


def test_clean_tree_exits_zero(clean_tree, capsys):
    assert main(["--strict", str(clean_tree)]) == 0
    assert "1 file clean" in capsys.readouterr().out


def test_findings_are_advisory_without_strict(dirty_tree, capsys):
    assert main([str(dirty_tree)]) == 0
    out = capsys.readouterr().out
    assert "RPR001" in out and "RPR003" in out


def test_findings_fail_under_strict(dirty_tree, capsys):
    assert main(["--strict", str(dirty_tree)]) == 1
    out = capsys.readouterr().out
    assert "2 findings" in out


def test_unknown_rule_id_is_usage_error(dirty_tree, capsys):
    assert main(["--select", "RPR999", str(dirty_tree)]) == 2
    assert "unknown rule ID" in capsys.readouterr().err


def test_missing_path_is_usage_error(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_select_limits_rules(dirty_tree, capsys):
    assert main(["--strict", "--select", "RPR003", str(dirty_tree)]) == 1
    out = capsys.readouterr().out
    assert "RPR003" in out and "RPR001" not in out


def test_prefix_select_expands_to_the_family(tmp_path, capsys):
    (tmp_path / "fiber.py").write_text(textwrap.dedent("""\
        def run(self, sim):
            yield self.bus.request()
            yield sim.timeout(10)
            self.bus.release()
    """))
    assert main(["--strict", "--select", "RPR3", str(tmp_path)]) == 1
    assert "RPR303" in capsys.readouterr().out


def test_unknown_prefix_is_usage_error(dirty_tree, capsys):
    assert main(["--select", "RPR9", str(dirty_tree)]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_prefix_and_exact_ids_mix(dirty_tree, capsys):
    assert main(["--strict", "--select", "RPR001,RPR3", str(dirty_tree)]) == 1
    out = capsys.readouterr().out
    assert "RPR001" in out and "RPR003" not in out


def test_expand_select_library_raises_instead_of_selecting_nothing():
    from repro.analysis.linter import expand_select
    with pytest.raises(ValueError):
        expand_select(["RPR999"])
    assert "RPR301" in expand_select(["RPR3"])
    assert expand_select(["RPR301"]) == {"RPR301"}


def test_json_output_schema(dirty_tree, capsys):
    assert main(["--json", str(dirty_tree)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert sorted(payload) == [
        "checked_files", "counts", "findings", "rules", "schema_version",
    ]
    assert payload["schema_version"] == JSON_SCHEMA_VERSION
    assert payload["checked_files"] == 1
    assert payload["counts"] == {"RPR001": 1, "RPR003": 1}
    for finding in payload["findings"]:
        assert sorted(finding) == ["col", "line", "message", "path", "rule"]
    assert sorted(payload["rules"]) == rule_ids()


def test_json_schema_version_covers_race_family(dirty_tree, capsys):
    # v2: the RPR3xx family joined the catalogue.
    assert JSON_SCHEMA_VERSION == 2
    assert main(["--json", str(dirty_tree)]) == 0
    payload = json.loads(capsys.readouterr().out)
    for rule_id in ("RPR301", "RPR302", "RPR303", "RPR304"):
        assert rule_id in payload["rules"]


def test_json_findings_round_trip(tmp_path, capsys):
    """A findings payload survives JSON serialization bit-for-bit."""
    from repro.analysis.findings import Finding
    from repro.analysis.linter import lint_paths

    (tmp_path / "fiber.py").write_text(textwrap.dedent("""\
        import time

        def run(self, sim):
            started = time.time()
            yield self.bus.request()
            yield sim.timeout(10)
            self.bus.release()
    """))
    findings, _checked = lint_paths([str(tmp_path)])
    assert {f.rule for f in findings} >= {"RPR001", "RPR303"}
    assert main(["--json", str(tmp_path)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema_version"] == JSON_SCHEMA_VERSION
    revived = [Finding(**record) for record in payload["findings"]]
    assert revived == findings


def test_list_rules_covers_catalogue(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in rule_ids():
        assert rule_id in out


def test_list_waivers_reports_reasoned_lines(tmp_path, capsys):
    (tmp_path / "waived.py").write_text(
        "import time\n"
        "t = time.time()  # repro: noqa RPR001 -- progress display\n"
    )
    assert main(["--list-waivers", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "waived.py:2: noqa RPR001" in out


def test_module_entry_point_runs_clean_on_shipped_tree():
    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env = dict(os.environ, PYTHONPATH=os.path.join(repo_root, "src"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--strict",
         os.path.join(repo_root, "src", "repro")],
        capture_output=True, text=True, env=env, cwd=repo_root,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout
