"""Graph verifier (RPR101-RPR107): findings, provenance, the start() hook."""

import warnings

import pytest

from repro.analysis import GraphVerificationError, verify_links
from repro.core import (
    SSD,
    Application,
    SSDLet,
    SSDLetProxy,
    SSDletModule,
    write_module_image,
)
from repro.core.errors import GraphWarning

from tests.core.helpers import IMAGE_PATH, deploy


class Opaque:
    """Deliberately unregistered payload type (not Packet-serializable)."""


class OpaqueSource(SSDLet):
    OUT_TYPES = (Opaque,)

    def run(self):
        yield from self.out(0).put(Opaque())


class OpaqueSink(SSDLet):
    IN_TYPES = (Opaque,)

    def run(self):
        yield from self.in_(0).get()


GRAPH_TEST_MODULE = SSDletModule("analysis-graph-test")
GRAPH_TEST_MODULE.register("idOpaqueSource", OpaqueSource)
GRAPH_TEST_MODULE.register("idOpaqueSink", OpaqueSink)
GRAPH_IMAGE_PATH = "/var/isc/slets/analysis_graph.slet"


@pytest.fixture
def ssd(system):
    deploy(system)
    if not system.fs.exists(GRAPH_IMAGE_PATH):
        write_module_image(system.fs, GRAPH_IMAGE_PATH, GRAPH_TEST_MODULE)
    return SSD(system)


def load(system, ssd, path=IMAGE_PATH):
    return system.run_fiber(ssd.loadModule(path))


def rules_of(findings):
    return sorted({finding.rule for finding in findings})


# ----------------------------------------------------------------- clean graphs
def test_clean_pipeline_no_findings(system, ssd):
    mid = load(system, ssd)
    app = Application(ssd)
    producer = SSDLetProxy(app, mid, "idProducer", (4,))
    doubler = SSDLetProxy(app, mid, "idDoubler")
    app.connect(producer.out(0), doubler.in_(0))
    app.connectTo(doubler.out(0), int)
    assert app.verify() == []


# ------------------------------------------------------------- RPR101 (types)
def test_type_mismatch_reported(system, ssd):
    mid = load(system, ssd)
    app = Application(ssd, verify="off")
    source = SSDLetProxy(app, mid, "idStrSource")
    doubler = SSDLetProxy(app, mid, "idDoubler")
    findings = verify_links([(source.out(0), doubler.in_(0))])
    assert rules_of(findings) == ["RPR101"]
    assert "str" in findings[0].message and "int" in findings[0].message


def test_reversed_endpoints_reported(system, ssd):
    mid = load(system, ssd)
    app = Application(ssd, verify="off")
    producer = SSDLetProxy(app, mid, "idProducer", (1,))
    doubler = SSDLetProxy(app, mid, "idDoubler")
    findings = verify_links([(doubler.in_(0), producer.out(0))])
    assert rules_of(findings) == ["RPR101"]
    assert "reversed" in findings[0].message


def test_missing_port_index_reported(system, ssd):
    mid = load(system, ssd)
    app = Application(ssd, verify="off")
    producer = SSDLetProxy(app, mid, "idProducer", (1,))
    doubler = SSDLetProxy(app, mid, "idDoubler")
    findings = verify_links([(producer.out(3), doubler.in_(0))])
    assert rules_of(findings) == ["RPR101"]
    assert "no output port 3" in findings[0].message


# -------------------------------------------------- RPR102/RPR103 (dangling)
def test_dangling_ports_reported_with_declaration_site(system, ssd):
    mid = load(system, ssd)
    app = Application(ssd, verify="off")
    SSDLetProxy(app, mid, "idDoubler")  # never wired
    findings = app.verify()
    assert rules_of(findings) == ["RPR102", "RPR103"]
    for finding in findings:
        assert finding.path.endswith("test_graph_verifier.py")
        assert finding.line > 0
    assert "no producer" in findings[0].message
    assert "no consumer" in findings[1].message


def test_findings_are_deterministic(system, ssd):
    mid = load(system, ssd)
    app = Application(ssd, verify="off")
    SSDLetProxy(app, mid, "idDoubler")
    SSDLetProxy(app, mid, "idConsumer")
    first = app.verify()
    second = app.verify()
    assert first == second
    assert [f.rule for f in first] == sorted(f.rule for f in first)


# --------------------------------------------------------- RPR104 (SPSC dup)
def test_duplicate_spsc_binding_reported(system, ssd):
    mid = load(system, ssd)
    app = Application(ssd, verify="off")
    producer = SSDLetProxy(app, mid, "idProducer", (2,))
    app.connectTo(producer.out(0), int)
    app.connectTo(producer.out(0), int)  # host-device queues are SPSC
    findings = app.verify()
    assert rules_of(findings) == ["RPR104"]
    assert "bound 2 times" in findings[0].message


# -------------------------------------------------- RPR105/RPR106 (topology)
def test_reachable_cycle_reported(system, ssd):
    mid = load(system, ssd)
    app = Application(ssd, verify="off")
    producer = SSDLetProxy(app, mid, "idProducer", (1,))
    stage_a = SSDLetProxy(app, mid, "idDoubler")
    stage_b = SSDLetProxy(app, mid, "idDoubler")
    app.connect(producer.out(0), stage_a.in_(0))
    app.connect(stage_a.out(0), stage_b.in_(0))
    app.connect(stage_b.out(0), stage_a.in_(0))  # back edge
    findings = app.verify()
    assert rules_of(findings) == ["RPR106"]
    assert "cycle" in findings[0].message


def test_sourceless_cycle_is_unreachable_and_cyclic(system, ssd):
    mid = load(system, ssd)
    app = Application(ssd, verify="off")
    stage_a = SSDLetProxy(app, mid, "idDoubler")
    stage_b = SSDLetProxy(app, mid, "idDoubler")
    app.connect(stage_a.out(0), stage_b.in_(0))
    app.connect(stage_b.out(0), stage_a.in_(0))
    findings = app.verify()
    assert [f.rule for f in findings] == ["RPR105", "RPR105", "RPR106"]


# ------------------------------------------------------ RPR107 (serializable)
def test_non_serializable_inter_application_link(system, ssd):
    mid = load(system, ssd, GRAPH_IMAGE_PATH)
    app_a = Application(ssd, "opaque-a", verify="off")
    app_b = Application(ssd, "opaque-b", verify="off")
    source = SSDLetProxy(app_a, mid, "idOpaqueSource")
    sink = SSDLetProxy(app_b, mid, "idOpaqueSink")
    findings = verify_links([(source.out(0), sink.in_(0))])
    assert rules_of(findings) == ["RPR107"]
    assert "no registered serializer" in findings[0].message


def test_same_application_link_needs_no_serializer(system, ssd):
    mid = load(system, ssd, GRAPH_IMAGE_PATH)
    app = Application(ssd, verify="off")
    source = SSDLetProxy(app, mid, "idOpaqueSource")
    sink = SSDLetProxy(app, mid, "idOpaqueSink")
    # Inter-SSDlet queues pass references; no Packet boundary, no RPR107.
    assert verify_links([(source.out(0), sink.in_(0))]) == []


# --------------------------------------------------------------- start() hook
def test_strict_mode_rejects_before_any_device_state(system, ssd):
    mid = load(system, ssd)
    app = Application(ssd, verify="strict")
    SSDLetProxy(app, mid, "idProducer", (5,))  # output never consumed

    def program():
        yield from app.start()

    with pytest.raises(GraphVerificationError) as excinfo:
        system.run_fiber(program())
    assert any(f.rule == "RPR103" for f in excinfo.value.findings)
    # Refused before instantiation: no device instances were created.
    assert app.device_app.instances == []
    assert not app.started


def test_warn_mode_emits_graph_warnings(system, ssd):
    mid = load(system, ssd)

    def program():
        app = Application(ssd)  # default mode is "warn"
        SSDLetProxy(app, mid, "idProducer", (1,))
        yield from app.start()

    with pytest.warns(GraphWarning, match="RPR103"):
        system.run_fiber(program())


def test_verify_off_is_silent(system, ssd):
    mid = load(system, ssd)

    def program():
        app = Application(ssd, verify="off")
        SSDLetProxy(app, mid, "idProducer", (1,))
        yield from app.start()

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        system.run_fiber(program())
    assert not [w for w in caught if issubclass(w.category, GraphWarning)]


def test_env_variable_sets_default_mode(system, ssd, monkeypatch):
    monkeypatch.setenv("REPRO_VERIFY_GRAPH", "strict")
    mid = load(system, ssd)
    app = Application(ssd)
    SSDLetProxy(app, mid, "idProducer", (1,))

    def program():
        yield from app.start()

    with pytest.raises(GraphVerificationError):
        system.run_fiber(program())


def test_invalid_verify_mode_rejected(system, ssd):
    with pytest.raises(ValueError):
        Application(ssd, verify="loud")


# ------------------------------------------------------------- real pipeline
def test_string_search_pipeline_is_clean_under_strict(system, monkeypatch):
    from repro.apps.string_search import install_weblog, run_biscuit_search

    monkeypatch.setenv("REPRO_VERIFY_GRAPH", "strict")
    _, hits = install_weblog(system, "/data/web.log", 24_000, "needle")
    count, _ = run_biscuit_search(system, "/data/web.log", "needle", num_searchers=2)
    assert count == hits
