"""Lint suite (RPR001-RPR006, RPR201): per-rule fixtures, noqa waivers, scoping."""

import textwrap

import pytest

from repro.analysis import lint_file
from repro.analysis.linter import parse_noqa


def lint_source(tmp_path, source, name="sample.py"):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return lint_file(str(path))


def rules_of(findings):
    return [finding.rule for finding in findings]


# ------------------------------------------------------------ RPR001 (clock)
def test_wall_clock_detected_with_location(tmp_path):
    findings = lint_source(tmp_path, """\
        import time

        started = time.time()
    """)
    assert rules_of(findings) == ["RPR001"]
    assert findings[0].line == 3
    assert "time.time" in findings[0].message


def test_wall_clock_detected_through_import_alias(tmp_path):
    findings = lint_source(tmp_path, """\
        from time import perf_counter as pc

        t0 = pc()
    """)
    assert rules_of(findings) == ["RPR001"]


def test_wall_clock_allowed_under_instrument(tmp_path):
    findings = lint_source(tmp_path, """\
        import time

        started = time.time()
    """, name="instrument/probe.py")
    assert findings == []


def test_wall_clock_waived_with_noqa(tmp_path):
    findings = lint_source(tmp_path, """\
        import time

        started = time.time()  # repro: noqa RPR001 -- CLI progress display
    """)
    assert findings == []


# ----------------------------------------------------------- RPR002 (random)
def test_module_level_random_detected(tmp_path):
    findings = lint_source(tmp_path, """\
        import random

        pick = random.choice(options)
    """)
    assert rules_of(findings) == ["RPR002"]


def test_unseeded_random_instance_detected(tmp_path):
    findings = lint_source(tmp_path, """\
        import random

        rng = random.Random()
    """)
    assert rules_of(findings) == ["RPR002"]
    assert "seed" in findings[0].message


def test_seeded_random_instance_clean(tmp_path):
    findings = lint_source(tmp_path, """\
        import random

        rng = random.Random(11)
        pick = rng.choice(options)
    """)
    assert findings == []


def test_numpy_global_stream_detected(tmp_path):
    findings = lint_source(tmp_path, """\
        import numpy as np

        noise = np.random.rand(4)
        rng = np.random.default_rng(7)
    """)
    assert rules_of(findings) == ["RPR002"]
    assert findings[0].line == 3


# -------------------------------------------------------- RPR003 (iteration)
def test_set_iteration_detected(tmp_path):
    findings = lint_source(tmp_path, """\
        for item in {1, 2, 3}:
            print(item)
    """)
    assert rules_of(findings) == ["RPR003"]


def test_set_intersection_iteration_detected(tmp_path):
    findings = lint_source(tmp_path, """\
        for column in set(lows) & set(highs):
            print(column)
    """)
    assert rules_of(findings) == ["RPR003"]


def test_dict_keys_iteration_detected_in_comprehension(tmp_path):
    findings = lint_source(tmp_path, """\
        labels = [str(k) for k in table.keys()]
    """)
    assert rules_of(findings) == ["RPR003"]


def test_sorted_set_iteration_clean(tmp_path):
    findings = lint_source(tmp_path, """\
        for item in sorted({1, 2, 3}):
            print(item)
    """)
    assert findings == []


def test_wrong_rule_id_noqa_does_not_suppress(tmp_path):
    findings = lint_source(tmp_path, """\
        for item in {1, 2}:  # repro: noqa RPR001 -- wrong rule on purpose
            print(item)
    """)
    assert rules_of(findings) == ["RPR003"]


def test_bare_noqa_suppresses_everything_on_line(tmp_path):
    findings = lint_source(tmp_path, """\
        for item in {1, 2}:  # repro: noqa
            print(item)
    """)
    assert findings == []


# ------------------------------------------------------------ RPR004 (units)
def test_unitless_timing_parameter_detected(tmp_path):
    findings = lint_source(tmp_path, """\
        def wait(timeout=5):
            return timeout
    """)
    assert rules_of(findings) == ["RPR004"]
    assert "timeout" in findings[0].message


def test_unitless_timing_assignment_detected(tmp_path):
    findings = lint_source(tmp_path, """\
        retry_delay = 3
    """)
    assert rules_of(findings) == ["RPR004"]


def test_suffixed_timing_names_clean(tmp_path):
    findings = lint_source(tmp_path, """\
        retry_delay_us = 3

        def wait(timeout_ns=5):
            return timeout_ns
    """)
    assert findings == []


def test_mixed_unit_arithmetic_detected(tmp_path):
    findings = lint_source(tmp_path, """\
        total = delay_us + wait_ns
    """)
    assert rules_of(findings) == ["RPR004"]
    assert "mixed-unit" in findings[0].message


def test_mixed_unit_comparison_detected(tmp_path):
    findings = lint_source(tmp_path, """\
        if elapsed_ms > limit_ns:
            pass
    """)
    assert rules_of(findings) == ["RPR004"]


def test_converted_units_clean(tmp_path):
    findings = lint_source(tmp_path, """\
        from repro.sim.units import us_to_ns

        total_ns = us_to_ns(delay_us) + wait_ns
    """)
    assert findings == []


# --------------------------------------------------------- RPR005 (blocking)
def test_blocking_sleep_in_fiber_detected(tmp_path):
    findings = lint_source(tmp_path, """\
        import time

        def fiber(sim):
            time.sleep(1)
            yield sim.timeout(5)
    """)
    assert rules_of(findings) == ["RPR005"]
    assert "time.sleep" in findings[0].message


def test_open_in_fiber_detected_but_fine_elsewhere(tmp_path):
    findings = lint_source(tmp_path, """\
        def loader(path):
            with open(path) as handle:
                return handle.read()

        def fiber(path):
            handle = open(path)
            yield
    """)
    assert rules_of(findings) == ["RPR005"]
    assert findings[0].line == 6


# ----------------------------------------------------------- RPR006 (events)
def test_discarded_timeout_detected(tmp_path):
    findings = lint_source(tmp_path, """\
        def fiber(sim):
            sim.timeout(5)
            yield
    """)
    assert rules_of(findings) == ["RPR006"]
    assert "discarded" in findings[0].message


def test_yielded_and_assigned_events_clean(tmp_path):
    findings = lint_source(tmp_path, """\
        def fiber(sim):
            yield sim.timeout(5)
            pending = sim.timeout(7)
            yield pending
    """)
    assert findings == []


def test_discarded_combinator_detected(tmp_path):
    findings = lint_source(tmp_path, """\
        def fiber(sim, events):
            all_of(sim, events)
            yield
    """)
    assert rules_of(findings) == ["RPR006"]


# ------------------------------------------------- RPR201 (non-yielding run)
def test_non_yielding_ssdlet_run_detected(tmp_path):
    findings = lint_source(tmp_path, """\
        from repro.core import SSDLet

        class Greedy(SSDLet):
            def run(self):
                total = 0
                for value in self._args:
                    total += value
                return total
    """)
    assert rules_of(findings) == ["RPR201"]
    assert "monopolize" in findings[0].message
    assert findings[0].line == 4


def test_yielding_ssdlet_run_clean(tmp_path):
    findings = lint_source(tmp_path, """\
        from repro.core import SSDLet

        class Fair(SSDLet):
            def run(self):
                value = yield from self.in_(0).get()
                yield from self.out(0).put(value)
    """)
    assert findings == []


def test_ssdlet_subclass_suffix_base_detected(tmp_path):
    findings = lint_source(tmp_path, """\
        class Spinner(streaming.SSDLet):
            def run(self):
                self.count = 1
    """)
    assert rules_of(findings) == ["RPR201"]


def test_abstract_run_stub_not_flagged(tmp_path):
    findings = lint_source(tmp_path, """\
        from repro.core import SSDLet

        class Base(SSDLet):
            def run(self):
                '''Subclasses override as a fiber.'''
                raise NotImplementedError
    """)
    assert findings == []


def test_non_ssdlet_run_method_ignored(tmp_path):
    findings = lint_source(tmp_path, """\
        class Worker:
            def run(self):
                return 42
    """)
    assert findings == []


def test_non_yielding_run_waived_with_noqa(tmp_path):
    findings = lint_source(tmp_path, """\
        from repro.core import SSDLet

        class Greedy(SSDLet):
            def run(self):  # repro: noqa RPR201 -- unit-test double, never scheduled
                return 0
    """)
    assert findings == []


# ----------------------------------------------------------- RPR000 and noqa
def test_syntax_error_reported_as_rpr000(tmp_path):
    findings = lint_source(tmp_path, """\
        def broken(:
            pass
    """)
    assert rules_of(findings) == ["RPR000"]
    assert findings[0].line > 0


def test_noqa_in_docstring_is_not_a_waiver():
    source = '"""Docs may say # repro: noqa RPR001 without waiving."""\n'
    assert parse_noqa(source) == {}


def test_noqa_comment_parsing():
    source = (
        "a = 1  # repro: noqa\n"
        "b = 2  # repro: noqa RPR001, RPR004 -- reasoned waiver\n"
        "c = 3  # unrelated comment\n"
    )
    waivers = parse_noqa(source)
    assert waivers == {1: None, 2: {"RPR001", "RPR004"}}


def test_clean_file_has_no_findings(tmp_path):
    findings = lint_source(tmp_path, """\
        import random

        def simulate(sim, seed, delay_ns=100):
            rng = random.Random(seed)
            for value in sorted({rng.randrange(10) for _ in range(3)}):
                yield sim.timeout(delay_ns + value)
    """)
    assert findings == []
