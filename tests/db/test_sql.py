"""SQL front end: parsing, binding, execution, NDP pushdown."""

import math

import pytest

from repro.db.catalog import d
from repro.db.sql import SqlError, parse, run_sql


# ------------------------------------------------------------------ parsing
def test_parse_simple_select():
    query = parse("SELECT a, b FROM t WHERE a = 5")
    assert [item.name for item in query.items] == ["a", "b"]
    assert query.tables == ["t"]
    assert query.where is not None


def test_parse_join_and_clauses():
    query = parse(
        "SELECT a FROM t JOIN u ON a = b WHERE c > 1 "
        "GROUP BY a HAVING a > 0 ORDER BY a DESC LIMIT 5"
    )
    assert query.tables == ["t", "u"]
    assert query.join_conditions == [("a", "b")]
    assert query.group_by == ["a"]
    assert query.having is not None
    assert query.order_by == [("a", True)]
    assert query.limit == 5


def test_parse_aggregates():
    query = parse("SELECT SUM(x) AS s, COUNT(*) AS n, AVG(x + 1) AS m FROM t")
    kinds = [(item.agg, item.name) for item in query.items]
    assert kinds == [("sum", "s"), ("count", "n"), ("avg", "m")]


def test_parse_count_distinct():
    query = parse("SELECT COUNT(DISTINCT x) AS u FROM t")
    assert query.items[0].distinct


def test_parse_string_escape():
    query = parse("SELECT a FROM t WHERE s = 'it''s'")
    assert query.where.right.value == "it's"


def test_parse_errors():
    with pytest.raises(SqlError):
        parse("SELECT FROM t")
    with pytest.raises(SqlError):
        parse("SELECT a FROM")
    with pytest.raises(SqlError):
        parse("SELECT a+1 FROM t")  # computed item needs AS
    with pytest.raises(SqlError):
        parse("SELECT a FROM t WHERE")
    with pytest.raises(SqlError):
        parse("SELECT a FROM t extra")


# ---------------------------------------------------------------- execution
def test_filter_and_projection(tpch_engines):
    conv, _ = tpch_engines
    rel, _ = run_sql(conv, """
        SELECT o_orderkey, o_totalprice FROM orders
        WHERE o_totalprice > 300000
    """)
    assert rel.columns == ["o_orderkey", "o_totalprice"]
    assert all(price > 300000 for _, price in rel.rows)
    assert len(rel) > 0


def test_date_literal_binding(tpch_engines):
    conv, _ = tpch_engines
    rel, _ = run_sql(conv, """
        SELECT o_orderkey, o_orderdate FROM orders
        WHERE o_orderdate = '1995-06-01'
    """)
    for _, when in rel.rows:
        assert when == d("1995-06-01")


def test_between_is_inclusive(tpch_engines):
    conv, _ = tpch_engines
    rel, _ = run_sql(conv, """
        SELECT l_shipdate FROM lineitem
        WHERE l_shipdate BETWEEN '1995-09-01' AND '1995-09-30'
    """)
    low, high = d("1995-09-01"), d("1995-09-30")
    assert rel.rows
    assert all(low <= row[0] <= high for row in rel.rows)


def test_computed_column(tpch_engines):
    conv, _ = tpch_engines
    rel, _ = run_sql(conv, """
        SELECT l_orderkey, l_extendedprice * (1 - l_discount) AS net
        FROM lineitem WHERE l_orderkey = 1
    """)
    assert rel.columns == ["l_orderkey", "net"]


def test_group_by_aggregate(tpch_engines, tpch_data):
    conv, _ = tpch_engines
    rel, _ = run_sql(conv, """
        SELECT l_returnflag, COUNT(*) AS n FROM lineitem GROUP BY l_returnflag
    """)
    got = dict(rel.rows)
    expected = {}
    li = tpch_data["lineitem"]
    for row in li:
        expected[row[8]] = expected.get(row[8], 0) + 1
    assert got == expected


def test_order_and_limit(tpch_engines):
    conv, _ = tpch_engines
    rel, _ = run_sql(conv, """
        SELECT o_orderkey, o_totalprice FROM orders
        ORDER BY o_totalprice DESC LIMIT 3
    """)
    prices = [row[1] for row in rel.rows]
    assert prices == sorted(prices, reverse=True)
    assert len(prices) == 3


def test_having(tpch_engines):
    conv, _ = tpch_engines
    rel, _ = run_sql(conv, """
        SELECT o_custkey, COUNT(*) AS n FROM orders
        GROUP BY o_custkey HAVING n > 10
    """)
    assert all(row[1] > 10 for row in rel.rows)


def test_join_with_cross_table_where(tpch_engines):
    conv, _ = tpch_engines
    rel, _ = run_sql(conv, """
        SELECT n_name, COUNT(*) AS suppliers
        FROM supplier JOIN nation ON s_nationkey = n_nationkey
        GROUP BY n_name ORDER BY suppliers DESC
    """)
    assert len(rel) > 0
    assert rel.columns == ["n_name", "suppliers"]


def test_join_condition_in_where(tpch_engines):
    conv, _ = tpch_engines
    joined, _ = run_sql(conv, """
        SELECT COUNT(*) AS n FROM supplier JOIN nation ON s_nationkey = n_nationkey
    """)
    via_where_tables, _ = run_sql(conv, """
        SELECT COUNT(*) AS n FROM supplier JOIN nation ON s_nationkey = n_nationkey
        WHERE s_acctbal > -10000
    """)
    assert joined.rows == via_where_tables.rows


def test_conv_biscuit_agree_and_ndp_fires(tpch_engines):
    conv, biscuit = tpch_engines
    statement = """
        SELECT l_orderkey, l_shipdate, l_linenumber
        FROM lineitem WHERE l_shipdate = '1995-01-17'
    """
    conv_rel, conv_s = run_sql(conv, statement)
    biscuit_rel, biscuit_s = run_sql(biscuit, statement)
    assert sorted(conv_rel.rows) == sorted(biscuit_rel.rows)
    assert biscuit.ndp_scans == 1  # the WHERE pushdown reached the planner
    assert biscuit_s < conv_s


def test_aggregate_results_match_across_engines(tpch_engines):
    conv, biscuit = tpch_engines
    statement = """
        SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue
        FROM lineitem JOIN part ON l_partkey = p_partkey
        WHERE l_shipdate BETWEEN '1995-09-01' AND '1995-09-30'
          AND p_type LIKE 'PROMO%'
    """
    conv_rel, _ = run_sql(conv, statement)
    biscuit_rel, _ = run_sql(biscuit, statement)
    assert math.isclose(conv_rel.rows[0][0], biscuit_rel.rows[0][0], rel_tol=1e-9)


def test_unknown_table_rejected(tpch_engines):
    conv, _ = tpch_engines
    with pytest.raises(SqlError):
        run_sql(conv, "SELECT x FROM nowhere")


def test_unknown_column_rejected(tpch_engines):
    conv, _ = tpch_engines
    with pytest.raises(SqlError):
        run_sql(conv, "SELECT o_orderkey FROM orders WHERE no_such_col = 1")


def test_non_grouped_select_item_rejected(tpch_engines):
    conv, _ = tpch_engines
    with pytest.raises(SqlError):
        run_sql(conv, "SELECT o_custkey, COUNT(*) AS n FROM orders GROUP BY o_orderkey")


def test_order_by_must_be_output(tpch_engines):
    conv, _ = tpch_engines
    with pytest.raises(SqlError):
        run_sql(conv, "SELECT o_orderkey FROM orders ORDER BY o_totalprice")
