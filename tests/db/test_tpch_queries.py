"""All 22 TPC-H queries: Conv/Biscuit equivalence + independent references."""

import math

import pytest

from repro.db.reference import REFERENCE_QUERIES, reference_result
from repro.db.tpch.queries import ALL_QUERIES, OFFLOADED_QUERIES, run_query


def rows_close(a, b):
    if len(a) != len(b):
        return False
    for ra, rb in zip(sorted(a, key=repr), sorted(b, key=repr)):
        if len(ra) != len(rb):
            return False
        for va, vb in zip(ra, rb):
            if isinstance(va, float) and isinstance(vb, float):
                if not math.isclose(va, vb, rel_tol=1e-9, abs_tol=1e-6):
                    return False
            elif va != vb:
                return False
    return True


def test_registry_covers_all_22():
    assert sorted(ALL_QUERIES) == list(range(1, 23))
    assert OFFLOADED_QUERIES == [4, 5, 6, 10, 12, 14, 15, 20]


@pytest.mark.parametrize("number", sorted(ALL_QUERIES))
def test_conv_and_biscuit_agree(number, tpch_engines):
    """The NDP path must be invisible in the results of every query."""
    conv, biscuit = tpch_engines
    rel_conv, conv_s = run_query(conv, number)
    rel_biscuit, biscuit_s = run_query(biscuit, number)
    assert rel_conv.columns == rel_biscuit.columns
    assert rows_close(rel_conv.rows, rel_biscuit.rows), "Q%d differs" % number
    assert conv_s > 0 and biscuit_s > 0


@pytest.mark.parametrize("number", sorted(REFERENCE_QUERIES))
def test_engine_matches_independent_reference(number, tpch_engines, tpch_data):
    """Engine output equals a from-scratch in-memory implementation."""
    conv, _ = tpch_engines
    rel, _ = run_query(conv, number)
    expected = reference_result(number, tpch_data)
    assert rows_close(rel.rows, expected), "Q%d reference mismatch" % number


def test_offload_classification(tpch_engines):
    """Which queries actually use NDP at test scale.

    The fixed page-count cutoffs bite harder at tiny scale factors, so the
    offloaded set here must be a subset of the Fig. 10 set; the full set is
    asserted at benchmark scale in benchmarks/test_fig10_tpch.py.
    """
    _, biscuit = tpch_engines
    used = []
    for number in sorted(ALL_QUERIES):
        run_query(biscuit, number)
        if biscuit.ndp_scans > 0:
            used.append(number)
    assert set(used) <= set(OFFLOADED_QUERIES)
    assert len(used) >= 5


def test_offloaded_queries_not_slower(tpch_engines):
    conv, biscuit = tpch_engines
    for number in (12, 14):
        _, conv_s = run_query(conv, number)
        _, biscuit_s = run_query(biscuit, number)
        assert biscuit_s < conv_s, "Q%d regressed under NDP" % number
    # Pure-scan Q6 at the tiny test scale is dominated by fixed offload
    # costs (sampling, app setup); it must still be close to parity.  The
    # real gain is asserted at benchmark scale.
    _, conv_s = run_query(conv, 6)
    _, biscuit_s = run_query(biscuit, 6)
    assert biscuit_s <= conv_s * 1.35


def test_q14_wins_big_even_at_test_scale(tpch_engines):
    conv, biscuit = tpch_engines
    _, conv_s = run_query(conv, 14)
    _, biscuit_s = run_query(biscuit, 14)
    assert conv_s / biscuit_s > 10


def test_q1_returns_four_groups(tpch_engines):
    conv, _ = tpch_engines
    rel, _ = run_query(conv, 1)
    flags = {(row[0], row[1]) for row in rel.rows}
    assert flags == {("A", "F"), ("N", "F"), ("N", "O"), ("R", "F")}


def test_q6_revenue_positive(tpch_engines):
    conv, _ = tpch_engines
    rel, _ = run_query(conv, 6)
    assert rel.rows[0][0] > 0


def test_q13_includes_zero_order_customers(tpch_engines):
    conv, _ = tpch_engines
    rel, _ = run_query(conv, 13)
    counts = dict(rel.rows)
    assert 0 in counts and counts[0] > 0


def test_q22_country_codes(tpch_engines):
    conv, _ = tpch_engines
    rel, _ = run_query(conv, 22)
    codes = {row[0] for row in rel.rows}
    assert codes <= {"13", "31", "23", "29", "30", "18", "17"}
