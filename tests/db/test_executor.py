"""Query engine operators: scans, joins, aggregation, policies."""

import pytest

from repro.db.catalog import Column, TableSchema
from repro.db.executor import EngineConfig, ExecutionMode, Rel
from repro.db.expr import col, eq, gt, lt, mul
from repro.db.planner import create_engine
from repro.db.storage import Database
from repro.host.platform import System

USERS = TableSchema(
    "users",
    [Column("u_id", "int"), Column("u_team", "int"), Column("u_name", "str")],
    primary_key=("u_id",),
    indexes=("u_team",),
)
EVENTS = TableSchema(
    "events",
    [Column("e_id", "int"), Column("e_user", "int"), Column("e_value", "float")],
    primary_key=("e_id",),
    indexes=("e_user",),
)
TEAMS = TableSchema(
    "teams",
    [Column("t_id", "int"), Column("t_name", "str")],
    primary_key=("t_id",),
)

USER_ROWS = [(i, i % 5, "user-%d" % i) for i in range(100)]
EVENT_ROWS = [(i, i % 100, float(i % 13)) for i in range(600)]
TEAM_ROWS = [(i, "team-%d" % i) for i in range(5)]


@pytest.fixture
def engine():
    system = System()
    db = Database(system.fs)
    db.load_table(USERS, USER_ROWS)
    db.load_table(EVENTS, EVENT_ROWS)
    db.load_table(TEAMS, TEAM_ROWS)
    return create_engine(system, db, ExecutionMode.CONV)


def run(engine, fiber):
    return engine.system.run_fiber(fiber)


# -------------------------------------------------------------------- scans
def test_full_scan(engine):
    rel = run(engine, engine.fetch(engine.t("users")))
    assert len(rel) == 100
    assert rel.columns == ["u_id", "u_team", "u_name"]


def test_scan_with_filter_and_projection(engine):
    rel = run(engine, engine.fetch(
        engine.t("users", eq(col("u_team"), 2), ["u_id", "u_name"])
    ))
    assert len(rel) == 20
    assert rel.columns == ["u_id", "u_name"]
    assert all(row[0] % 5 == 2 for row in rel.rows)


def test_scan_counts_pages(engine):
    engine.begin_query()
    run(engine, engine.fetch(engine.t("events")))
    assert engine.host_pages_read == engine.db.table("events").num_pages


def test_scan_takes_simulated_time(engine):
    before = engine.system.sim.now
    run(engine, engine.fetch(engine.t("events")))
    assert engine.system.sim.now > before


# -------------------------------------------------------------------- joins
def expected_join():
    users = {u[0]: u for u in USER_ROWS}
    return sorted(
        (e[1], users[e[1]][1], e[2]) for e in EVENT_ROWS
    )


def test_index_join_rel_to_table(engine):
    events = run(engine, engine.fetch(engine.t("events", None, ["e_user", "e_value"])))
    joined = run(engine, engine.join(
        events, engine.t("users", None, ["u_id", "u_team"]), "e_user", "u_id",
    ))
    got = sorted((row[joined.position("u_id")], row[joined.position("u_team")],
                  row[joined.position("e_value")]) for row in joined.rows)
    assert got == expected_join()


def test_hash_join_rel_to_rel(engine):
    events = run(engine, engine.fetch(engine.t("events", None, ["e_user", "e_value"])))
    users = run(engine, engine.fetch(engine.t("users", None, ["u_id", "u_team"])))
    joined = run(engine, engine.join(events, users, "e_user", "u_id"))
    got = sorted((row[joined.position("u_id")], row[joined.position("u_team")],
                  row[joined.position("e_value")]) for row in joined.rows)
    assert got == expected_join()


def test_join_with_inner_predicate(engine):
    events = run(engine, engine.fetch(engine.t("events", None, ["e_user"])))
    joined = run(engine, engine.join(
        events, engine.t("users", eq(col("u_team"), 0), ["u_id", "u_team"]),
        "e_user", "u_id",
    ))
    assert len(joined) == 120  # 20 team-0 users x 6 events each
    assert all(row[joined.position("u_team")] == 0 for row in joined.rows)


def test_join_output_column_selection(engine):
    events = run(engine, engine.fetch(engine.t("events", None, ["e_user", "e_value"])))
    joined = run(engine, engine.join(
        events, engine.t("users", None, ["u_id", "u_name"]),
        "e_user", "u_id", cols=["u_name", "e_value"],
    ))
    assert joined.columns == ["u_name", "e_value"]


def test_conv_two_table_join_drives_smaller(engine):
    joined = run(engine, engine.join(
        engine.t("users", None, ["u_id", "u_team"]),
        engine.t("events", None, ["e_user", "e_value"]),
        "u_id", "e_user",
    ))
    assert len(joined) == 600


def test_multi_join_three_tables(engine):
    joined = run(engine, engine.multi_join(
        [
            engine.t("teams", None, ["t_id", "t_name"]),
            engine.t("users", None, ["u_id", "u_team"]),
            engine.t("events", None, ["e_user", "e_value"]),
        ],
        [("t_id", "u_team"), ("u_id", "e_user")],
    ))
    assert len(joined) == 600
    assert "t_name" in joined.columns


def test_multi_join_extra_condition_as_filter(engine):
    joined = run(engine, engine.multi_join(
        [
            engine.t("users", None, ["u_id", "u_team"]),
            engine.t("events", None, ["e_id", "e_user"]),
        ],
        [("u_id", "e_user"), ("u_team", "e_id")],  # second pair filters
    ))
    for row in joined.rows:
        assert row[joined.position("u_team")] == row[joined.position("e_id")]


def test_multi_join_needs_two_relations(engine):
    with pytest.raises(ValueError):
        run(engine, engine.multi_join([engine.t("users")], []))


def test_inl_scan_switch_uses_hash_for_hot_probes(engine):
    """When estimated probe pages dwarf a scan, the engine must scan."""
    engine.config.inl_scan_factor = 0.001
    engine.begin_query()
    events = run(engine, engine.fetch(engine.t("events", None, ["e_user"])))
    pages_after_scan = engine.host_pages_read
    run(engine, engine.join(events, engine.t("users"), "e_user", "u_id"))
    # Hash path: inner read once sequentially, no 600 probes.
    users_pages = engine.db.table("users").num_pages
    assert engine.host_pages_read <= pages_after_scan + users_pages


# -------------------------------------------------------------- operators
def test_filter_and_project(engine):
    rel = Rel(["x", "y"], [(1, 2.0), (3, 4.0), (5, 6.0)])
    kept = run(engine, engine.filter(rel, gt(col("x"), 2)))
    assert kept.rows == [(3, 4.0), (5, 6.0)]
    projected = run(engine, engine.project(kept, [("double", mul(col("y"), 2))]))
    assert projected.rows == [(8.0,), (12.0,)]


def test_aggregate_kinds(engine):
    rel = Rel(["g", "v"], [(1, 2.0), (1, 4.0), (2, 10.0)])
    agg = run(engine, engine.aggregate(rel, ["g"], [
        ("total", "sum", col("v")),
        ("n", "count", None),
        ("mean", "avg", col("v")),
        ("lo", "min", col("v")),
        ("hi", "max", col("v")),
        ("uniq", "count_distinct", col("v")),
    ]))
    by_group = {row[0]: row[1:] for row in agg.rows}
    assert by_group[1] == (6.0, 2, 3.0, 2.0, 4.0, 2)
    assert by_group[2] == (10.0, 1, 10.0, 10.0, 10.0, 1)


def test_global_aggregate(engine):
    rel = Rel(["v"], [(1.0,), (2.0,), (3.0,)])
    agg = run(engine, engine.aggregate(rel, [], [("s", "sum", col("v"))]))
    assert agg.rows == [(6.0,)]


def test_sort_and_limit(engine):
    rel = Rel(["a", "b"], [(1, "x"), (3, "y"), (2, "x")])
    ordered = run(engine, engine.sort(rel, [("b", False), ("a", True)]))
    assert ordered.rows == [(2, "x"), (1, "x"), (3, "y")]
    top = run(engine, engine.sort(rel, [("a", True)], limit=2))
    assert top.rows == [(3, "y"), (2, "x")]


def test_distinct(engine):
    rel = Rel(["a", "b"], [(1, "x"), (1, "x"), (2, "y")])
    assert len(run(engine, engine.distinct(rel)).rows) == 2
    only_a = run(engine, engine.distinct(rel, ["a"]))
    assert sorted(only_a.rows) == [(1,), (2,)]


def test_semi_and_anti_join(engine):
    rel = Rel(["k"], [(1,), (2,), (3,)])
    keys = Rel(["j"], [(2,), (3,), (9,)])
    kept = run(engine, engine.semi_join(rel, "k", keys, "j"))
    assert sorted(kept.rows) == [(2,), (3,)]
    dropped = run(engine, engine.semi_join(rel, "k", keys, "j", anti=True))
    assert dropped.rows == [(1,)]


def test_rename(engine):
    rel = Rel(["a", "b"], [(1, 2)])
    renamed = engine.rename(rel, {"a": "alpha"})
    assert renamed.columns == ["alpha", "b"]
    assert renamed.rows is rel.rows


# ------------------------------------------------------------- buffer pool
def test_buffer_pool_caches_probe_pages(engine):
    engine.begin_query()
    events = run(engine, engine.fetch(
        engine.t("events", lt(col("e_id"), 25), ["e_user"])
    ))
    assert len(events) == 25  # few probes: the engine keeps INL
    scan_pages = engine.host_pages_read
    run(engine, engine.join(events, engine.t("users"), "e_user", "u_id"))
    probe_reads = engine.host_pages_read - scan_pages
    # 25 probes into a table whose pages all fit in the pool: each distinct
    # page misses once, the rest hit.
    assert probe_reads <= engine.db.table("users").num_pages
    assert engine.pool.hits > 0


def test_begin_query_cold_clears_pool(engine):
    engine.pool.put(("users", 0), [])
    engine.begin_query(cold=True)
    assert engine.pool.get(("users", 0)) is None
