"""Aggregation pushdown: the ScanAggregate SSDlet (extension feature)."""

import math

import pytest

from repro.db.executor import ExecutionMode
from repro.db.ndp import ndp_aggregate_supported
from repro.db.planner import create_engine
from repro.db.sql import run_sql

Q6_SQL = """
    SELECT SUM(l_extendedprice * l_discount) AS revenue, COUNT(*) AS n,
           AVG(l_quantity) AS avg_qty, MIN(l_shipdate) AS lo,
           MAX(l_shipdate) AS hi
    FROM lineitem
    WHERE l_shipdate BETWEEN '1994-01-01' AND '1994-12-31'
"""

GROUPED_SQL = """
    SELECT l_shipmode, COUNT(*) AS n, SUM(l_quantity) AS qty
    FROM lineitem
    WHERE l_shipdate BETWEEN '1994-01-01' AND '1994-12-31'
    GROUP BY l_shipmode ORDER BY l_shipmode
"""


def rows_close(a, b):
    for ra, rb in zip(sorted(a, key=repr), sorted(b, key=repr)):
        for va, vb in zip(ra, rb):
            if isinstance(va, float):
                if not math.isclose(va, vb, rel_tol=1e-9, abs_tol=1e-6):
                    return False
            elif va != vb:
                return False
    return len(a) == len(b)


def test_supported_kinds():
    assert ndp_aggregate_supported([("a", "sum", None), ("b", "avg", None),
                                    ("c", "min", None), ("d", "max", None),
                                    ("e", "count", None)])
    assert not ndp_aggregate_supported([("u", "count_distinct", None)])


def test_global_aggregates_match_host(tpch_engines):
    conv, biscuit = tpch_engines
    conv_rel, _ = run_sql(conv, Q6_SQL)
    biscuit_rel, _ = run_sql(biscuit, Q6_SQL)
    assert biscuit.ndp_scans == 1
    assert rows_close(conv_rel.rows, biscuit_rel.rows)


def test_grouped_aggregates_match_host(tpch_engines):
    conv, biscuit = tpch_engines
    conv_rel, _ = run_sql(conv, GROUPED_SQL)
    biscuit_rel, _ = run_sql(biscuit, GROUPED_SQL)
    assert conv_rel.rows == biscuit_rel.rows


def test_pushdown_ships_almost_nothing(tpch_system):
    from repro.db.planner import create_engine as mk

    system, db = tpch_system
    with_push = mk(system, db, ExecutionMode.BISCUIT)
    without_push = mk(system, db, ExecutionMode.BISCUIT)
    without_push.config.ndp_pushdown_aggregate = False
    run_sql(with_push, Q6_SQL)
    run_sql(without_push, Q6_SQL)
    assert with_push.ndp_result_bytes < without_push.ndp_result_bytes / 20


def test_pushdown_not_slower(tpch_engines):
    _, biscuit = tpch_engines
    _, with_push_s = run_sql(biscuit, Q6_SQL)
    biscuit.config.ndp_pushdown_aggregate = False
    try:
        _, without_push_s = run_sql(biscuit, Q6_SQL)
    finally:
        biscuit.config.ndp_pushdown_aggregate = True
    # At the tiny test scale the fixed setup costs dominate both paths;
    # pushdown must at least be in the same ballpark (its real win — the
    # result-byte reduction — is asserted above).
    assert with_push_s <= without_push_s * 1.2


def test_count_distinct_falls_back(tpch_engines):
    conv, biscuit = tpch_engines
    statement = """
        SELECT COUNT(DISTINCT l_suppkey) AS suppliers FROM lineitem
        WHERE l_shipdate BETWEEN '1994-01-01' AND '1994-12-31'
    """
    conv_rel, _ = run_sql(conv, statement)
    biscuit_rel, _ = run_sql(biscuit, statement)
    # Falls back to the row-shipping scan (still offloaded) — same answer.
    assert conv_rel.rows == biscuit_rel.rows


def test_join_queries_not_pushed_down(tpch_engines):
    """Aggregates over joins keep the regular path (and stay correct)."""
    conv, biscuit = tpch_engines
    statement = """
        SELECT SUM(l_extendedprice) AS s
        FROM lineitem JOIN part ON l_partkey = p_partkey
        WHERE l_shipdate BETWEEN '1995-09-01' AND '1995-09-30'
    """
    conv_rel, _ = run_sql(conv, statement)
    biscuit_rel, _ = run_sql(biscuit, statement)
    assert rows_close(conv_rel.rows, biscuit_rel.rows)


def test_empty_result_group(tpch_engines):
    conv, biscuit = tpch_engines
    statement = """
        SELECT COUNT(*) AS n FROM lineitem
        WHERE l_shipdate BETWEEN '2030-01-01' AND '2030-12-31'
    """
    conv_rel, _ = run_sql(conv, statement)
    biscuit_rel, _ = run_sql(biscuit, statement)
    # Global aggregate over zero rows: both engines agree (no groups).
    assert conv_rel.rows == biscuit_rel.rows
