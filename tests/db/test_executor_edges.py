"""Executor edge cases: empty inputs, fallback paths, projections."""

import pytest

from repro.db.catalog import Column, TableSchema
from repro.db.executor import ExecutionMode, Rel
from repro.db.expr import col, eq, gt
from repro.db.planner import create_engine
from repro.db.storage import Database
from repro.host.platform import System

LEFT = TableSchema("lhs", [Column("l_id", "int"), Column("l_tag", "str")],
                   primary_key=("l_id",))
RIGHT = TableSchema("rhs", [Column("r_id", "int"), Column("r_val", "float")],
                    primary_key=("r_id",))


@pytest.fixture
def engine():
    system = System()
    db = Database(system.fs)
    db.load_table(LEFT, [(i, "tag%d" % (i % 3)) for i in range(30)])
    db.load_table(RIGHT, [(i, float(i)) for i in range(30)])
    return create_engine(system, db, ExecutionMode.CONV)


def run(engine, fiber):
    return engine.system.run_fiber(fiber)


def test_cartesian_fallback_when_no_condition(engine):
    joined = run(engine, engine.multi_join(
        [engine.t("lhs", None, ["l_id"]), engine.t("rhs", None, ["r_id"])],
        [],
    ))
    assert len(joined) == 30 * 30


def test_join_with_empty_driving_rel(engine):
    empty = Rel(["l_id"], [])
    joined = run(engine, engine.join(empty, engine.t("rhs"), "l_id", "r_id"))
    assert len(joined) == 0


def test_join_filtered_to_empty(engine):
    joined = run(engine, engine.multi_join(
        [engine.t("lhs", eq(col("l_id"), -1), ["l_id"]),
         engine.t("rhs", None, ["r_id", "r_val"])],
        [("l_id", "r_id")],
    ))
    assert len(joined) == 0


def test_aggregate_empty_input(engine):
    empty = Rel(["g", "v"], [])
    agg = run(engine, engine.aggregate(empty, ["g"], [("s", "sum", col("v"))]))
    assert agg.rows == []


def test_sort_empty(engine):
    empty = Rel(["x"], [])
    assert run(engine, engine.sort(empty, [("x", False)])).rows == []


def test_filter_empty(engine):
    empty = Rel(["x"], [])
    assert run(engine, engine.filter(empty, gt(col("x"), 0))).rows == []


def test_fetch_of_rel_passthrough(engine):
    rel = Rel(["a"], [(1,)])
    assert run(engine, engine.fetch(rel)) is rel


def test_limit_without_sort_via_rows(engine):
    rel = run(engine, engine.fetch(engine.t("lhs", None, ["l_id"])))
    top = run(engine, engine.sort(rel, [("l_id", False)], limit=5))
    assert len(top) == 5


def test_join_projection_from_both_sides(engine):
    lhs = run(engine, engine.fetch(engine.t("lhs", None, ["l_id", "l_tag"])))
    joined = run(engine, engine.join(
        lhs, engine.t("rhs", None, ["r_id", "r_val"]), "l_id", "r_id",
        cols=["l_tag", "r_val"],
    ))
    assert joined.columns == ["l_tag", "r_val"]
    assert len(joined) == 30


def test_join_unknown_output_column(engine):
    lhs = run(engine, engine.fetch(engine.t("lhs", None, ["l_id"])))
    with pytest.raises(KeyError):
        run(engine, engine.join(
            lhs, engine.t("rhs", None, ["r_id"]), "l_id", "r_id",
            cols=["nope"],
        ))


def test_distinct_on_empty(engine):
    empty = Rel(["x"], [])
    assert run(engine, engine.distinct(empty)).rows == []


def test_biscuit_pages_equivalent_counts_results(engine):
    engine.begin_query()
    engine.ndp_result_bytes = engine.db.fs.page_size * 3
    assert engine.biscuit_pages_equivalent == engine.host_pages_read + 3
