"""TPC-H data generator: cardinalities, domains, distributions, determinism."""

from repro.db.catalog import d
from repro.db.tpch.datagen import TPCH_NATIONS, generate_tables
from repro.db.tpch.schema import TPCH_SCHEMAS
from tests.conftest import TINY_SF


def test_table_set(tpch_data):
    assert set(tpch_data) == set(TPCH_SCHEMAS)


def test_row_counts_scale(tpch_data):
    assert len(tpch_data["region"]) == 5
    assert len(tpch_data["nation"]) == 25
    assert len(tpch_data["supplier"]) == round(10_000 * TINY_SF)
    assert len(tpch_data["customer"]) == round(150_000 * TINY_SF)
    assert len(tpch_data["part"]) == round(200_000 * TINY_SF)
    assert len(tpch_data["partsupp"]) == 4 * len(tpch_data["part"])
    assert len(tpch_data["orders"]) == round(1_500_000 * TINY_SF)
    # dbgen: 1-7 lineitems per order, averaging ~4.
    ratio = len(tpch_data["lineitem"]) / len(tpch_data["orders"])
    assert 3.0 < ratio < 5.0


def test_rows_match_schema_width(tpch_data):
    for name, rows in tpch_data.items():
        width = TPCH_SCHEMAS[name].width
        assert all(len(row) == width for row in rows), name


def test_nation_region_hierarchy(tpch_data):
    assert [(row[1], row[2]) for row in tpch_data["nation"]] == TPCH_NATIONS


def test_keys_are_dense_and_unique(tpch_data):
    orders = tpch_data["orders"]
    keys = [row[0] for row in orders]
    assert keys == list(range(1, len(orders) + 1))


def test_foreign_keys_valid(tpch_data):
    num_customer = len(tpch_data["customer"])
    num_part = len(tpch_data["part"])
    num_supplier = len(tpch_data["supplier"])
    num_orders = len(tpch_data["orders"])
    assert all(1 <= row[1] <= num_customer for row in tpch_data["orders"])
    for row in tpch_data["lineitem"]:
        assert 1 <= row[0] <= num_orders
        assert 1 <= row[1] <= num_part
        assert 1 <= row[2] <= num_supplier


def test_lineitem_date_arithmetic(tpch_data):
    order_dates = {row[0]: row[4] for row in tpch_data["orders"]}
    for row in tpch_data["lineitem"][:500]:
        order_date = order_dates[row[0]]
        ship, commit, receipt = row[10], row[11], row[12]
        assert order_date < ship <= order_date + 121
        assert order_date + 30 <= commit <= order_date + 90
        assert ship < receipt <= ship + 30


def test_return_flags_consistent_with_dates(tpch_data):
    cutoff = d("1995-06-17")
    for row in tpch_data["lineitem"][:500]:
        if row[12] <= cutoff:
            assert row[8] in ("R", "A")
        else:
            assert row[8] == "N"
        assert row[9] == ("F" if row[10] <= cutoff else "O")


def test_order_dates_clustered_by_key(tpch_data):
    """Order keys are roughly chronological (DESIGN.md layout liberty)."""
    orders = tpch_data["orders"]
    n = len(orders)
    early = [row[4] for row in orders[: n // 4]]
    late = [row[4] for row in orders[-n // 4:]]
    assert max(early) < min(late) + 60  # quarters barely overlap
    assert sum(early) / len(early) < sum(late) / len(late)


def test_date_domain(tpch_data):
    lo, hi = d("1992-01-01"), d("1998-08-02")
    assert all(lo <= row[4] <= hi for row in tpch_data["orders"])


def test_comment_keywords_present(tpch_data):
    """Q13's filter needs 'special requests' in some order comments."""
    assert any("special requests" in row[8] for row in tpch_data["orders"])


def test_part_vocabulary(tpch_data):
    for row in tpch_data["part"][:200]:
        assert row[3].startswith("Brand#")
        assert len(row[4].split()) == 3  # TYPE syllables
        assert 1 <= row[5] <= 50


def test_deterministic_by_seed():
    first = generate_tables(0.001, seed=42)
    second = generate_tables(0.001, seed=42)
    assert first == second
    different = generate_tables(0.001, seed=43)
    assert different["lineitem"] != first["lineitem"]


def test_scale_factor_positive():
    import pytest
    with pytest.raises(ValueError):
        generate_tables(0)
