"""The NDP planner heuristic and the ScanFilter offload path."""

import pytest

from repro.db.catalog import d
from repro.db.executor import ExecutionMode
from repro.db.expr import and_, between, col, eq, le, lt, not_like
from repro.db.planner import create_engine


def peek(engine, ref):
    return engine.system.run_fiber(engine.planner.peek(ref))


# ------------------------------------------------------------- decisions
def test_no_predicate_no_offload(tpch_engines):
    _, biscuit = tpch_engines
    biscuit.begin_query()
    decision = peek(biscuit, biscuit.t("lineitem"))
    assert not decision.offload
    assert "no filter" in decision.reason


def test_not_like_is_hw_limited(tpch_engines):
    _, biscuit = tpch_engines
    biscuit.begin_query()
    decision = peek(biscuit, biscuit.t(
        "orders", not_like(col("o_comment"), "%special%requests%")
    ))
    assert not decision.offload
    assert "HW limitation" in decision.reason


def test_small_table_rejected(tpch_engines):
    _, biscuit = tpch_engines
    biscuit.begin_query()
    decision = peek(biscuit, biscuit.t("part", eq(col("p_size"), 15)))
    assert not decision.offload
    assert "too small" in decision.reason


def test_unselective_predicate_rejected(tpch_engines):
    _, biscuit = tpch_engines
    biscuit.begin_query()
    decision = peek(biscuit, biscuit.t(
        "lineitem", le(col("l_shipdate"), d("1998-09-02"))
    ))
    assert not decision.offload
    assert decision.est_selectivity > 0.9


def test_selective_range_offloaded(tpch_engines):
    _, biscuit = tpch_engines
    biscuit.begin_query()
    decision = peek(biscuit, biscuit.t(
        "lineitem", between(col("l_shipdate"), d("1995-09-01"), d("1995-10-01"))
    ))
    assert decision.offload
    assert decision.est_selectivity < 0.25
    assert decision.mfilter is not None


def test_sampling_is_deterministic(tpch_engines):
    _, biscuit = tpch_engines
    ref = biscuit.t("orders", between(col("o_orderdate"), d("1994-01-01"), d("1995-01-01")))
    biscuit.begin_query()
    first = peek(biscuit, ref)
    biscuit.begin_query()
    second = peek(biscuit, ref)
    assert first.est_selectivity == second.est_selectivity
    assert first.offload == second.offload


def test_decision_cached_within_query(tpch_engines):
    _, biscuit = tpch_engines
    biscuit.begin_query()
    ref = biscuit.t("lineitem", between(col("l_shipdate"), d("1994-01-01"), d("1995-01-01")))
    peek(biscuit, ref)
    sampled = biscuit.planner.sampled_pages
    peek(biscuit, ref)
    assert biscuit.planner.sampled_pages == sampled  # no second sampling pass


def test_planner_picks_most_selective_conjunct(tpch_engines):
    """Given a date range and a broad IN, the IP gets keyed with the range."""
    _, biscuit = tpch_engines
    biscuit.begin_query()
    from repro.db.expr import in_
    pred = and_(
        in_(col("l_shipmode"), ("MAIL", "SHIP")),
        between(col("l_receiptdate"), d("1994-01-01"), d("1995-01-01")),
    )
    decision = peek(biscuit, biscuit.t("lineitem", pred))
    assert decision.mfilter.description.startswith("range(")


def test_conv_engine_never_plans(tpch_engines):
    conv, _ = tpch_engines
    conv.begin_query()

    def program():
        rel = yield from conv.fetch(conv.t(
            "lineitem",
            between(col("l_shipdate"), d("1995-09-01"), d("1995-10-01")),
            ["l_orderkey"],
        ))
        return rel

    conv.system.run_fiber(program())
    assert conv.ndp_scans == 0
    assert conv.ndp_context is None


# ----------------------------------------------------------------- NDP scan
def fetch_rows(engine, pred, cols):
    engine.begin_query()

    def program():
        rel = yield from engine.fetch(engine.t("lineitem", pred, cols))
        return rel

    return engine.system.run_fiber(program())


def test_ndp_scan_matches_host_scan(tpch_engines):
    conv, biscuit = tpch_engines
    pred = between(col("l_shipdate"), d("1995-09-01"), d("1995-10-01"))
    cols = ["l_orderkey", "l_partkey", "l_shipdate"]
    host_rel = fetch_rows(conv, pred, cols)
    ndp_rel = fetch_rows(biscuit, pred, cols)
    assert biscuit.ndp_scans == 1
    assert sorted(host_rel.rows) == sorted(ndp_rel.rows)


def test_ndp_result_bytes_accounted(tpch_engines):
    _, biscuit = tpch_engines
    pred = between(col("l_shipdate"), d("1995-09-01"), d("1995-10-01"))
    rel = fetch_rows(biscuit, pred, ["l_orderkey"])
    if biscuit.ndp_scans:
        assert biscuit.ndp_result_bytes > 0
        assert biscuit.biscuit_pages_equivalent > biscuit.host_pages_read


def test_ndp_faster_than_host_for_selective_scan(tpch_engines):
    conv, biscuit = tpch_engines
    pred = between(col("l_shipdate"), d("1995-09-01"), d("1995-10-01"))
    system = conv.system

    start = system.sim.now
    fetch_rows(conv, pred, ["l_orderkey"])
    conv_time = system.sim.now - start
    start = system.sim.now
    fetch_rows(biscuit, pred, ["l_orderkey"])
    biscuit_time = system.sim.now - start
    assert biscuit_time < conv_time


def test_software_scan_slower_than_matcher(tpch_engines):
    _, biscuit = tpch_engines
    pred = between(col("l_shipdate"), d("1995-09-01"), d("1995-10-01"))
    system = biscuit.system

    start = system.sim.now
    fetch_rows(biscuit, pred, ["l_orderkey"])
    with_matcher = system.sim.now - start

    biscuit.config.ndp_use_matcher = False
    start = system.sim.now
    rel = fetch_rows(biscuit, pred, ["l_orderkey"])
    without_matcher = system.sim.now - start
    biscuit.config.ndp_use_matcher = True
    assert without_matcher > 2 * with_matcher


def test_ndp_scan_empty_result(tpch_engines):
    conv, biscuit = tpch_engines
    pred = eq(col("l_shipdate"), d("2030-01-01"))  # matches nothing
    host_rel = fetch_rows(conv, pred, ["l_orderkey"])
    ndp_rel = fetch_rows(biscuit, pred, ["l_orderkey"])
    assert len(host_rel) == len(ndp_rel) == 0
