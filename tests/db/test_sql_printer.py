"""to_sql: rendering expressions back to parseable, equivalent SQL."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.expr import (
    and_, between, col, compile_expr, eq, ge, gt, in_, le, like, lt, ne,
    not_, or_,
)
from repro.db.sql import parse, to_sql

POSITIONS = {"a": 0, "b": 1, "s": 2}


def roundtrip_where(expr):
    """Parse `SELECT a FROM t WHERE <rendered>` and return the WHERE tree."""
    return parse("SELECT a FROM t WHERE " + to_sql(expr)).where


def equivalent(original, reparsed, rows):
    f = compile_expr(original, POSITIONS)
    g = compile_expr(reparsed, POSITIONS)
    return all(bool(f(row)) == bool(g(row)) for row in rows)


ROWS = [
    (0, 0.0, ""), (1, 1.5, "abc"), (5, -2.0, "hello world"),
    (10, 3.25, "xyz"), (-3, 0.5, "a'b"),
]


def test_simple_comparisons_roundtrip():
    for expr in (eq(col("a"), 5), ne(col("a"), 5), lt(col("b"), 1.5),
                 le(col("a"), 0), gt(col("a"), -3), ge(col("b"), 0.0)):
        assert equivalent(expr, roundtrip_where(expr), ROWS)


def test_logic_roundtrip():
    expr = or_(and_(eq(col("a"), 1), gt(col("b"), 0.0)), eq(col("s"), "abc"))
    assert equivalent(expr, roundtrip_where(expr), ROWS)


def test_not_roundtrip():
    expr = not_(eq(col("a"), 5))
    assert equivalent(expr, roundtrip_where(expr), ROWS)


def test_between_renders_half_open():
    expr = between(col("a"), 0, 10)
    text = to_sql(expr)
    assert ">=" in text and "<" in text
    assert equivalent(expr, roundtrip_where(expr), ROWS)


def test_in_and_like_roundtrip():
    for expr in (in_(col("a"), (1, 5, 10)), like(col("s"), "he%o")):
        assert equivalent(expr, roundtrip_where(expr), ROWS)


def test_string_quote_escaping():
    expr = eq(col("s"), "a'b")
    assert equivalent(expr, roundtrip_where(expr), ROWS)


@st.composite
def predicates(draw, depth=0):
    if depth >= 2 or draw(st.booleans()):
        column = draw(st.sampled_from(["a", "b"]))
        op = draw(st.sampled_from([eq, ne, lt, le, gt, ge]))
        value = draw(st.integers(-20, 20)) if column == "a" else \
            draw(st.floats(-5, 5, allow_nan=False))
        return op(col(column), value)
    combiner = draw(st.sampled_from([and_, or_]))
    left = draw(predicates(depth=depth + 1))
    right = draw(predicates(depth=depth + 1))
    if draw(st.booleans()):
        left = not_(left)
    return combiner(left, right)


@settings(max_examples=60, deadline=None)
@given(predicates())
def test_property_roundtrip_preserves_semantics(expr):
    reparsed = roundtrip_where(expr)
    assert equivalent(expr, reparsed, ROWS)
