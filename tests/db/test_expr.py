"""Expression engine: evaluation semantics and matcher-offload analysis."""

import pytest

from repro.db.expr import (
    Between,
    and_,
    between,
    case,
    col,
    columns_of,
    compile_expr,
    div,
    eq,
    ge,
    gt,
    in_,
    le,
    like,
    lt,
    matcher_candidates,
    matcher_filter,
    mul,
    ne,
    not_,
    not_like,
    or_,
    sub,
    substring,
    year_of,
)

POS = {"a": 0, "b": 1, "s": 2, "dt": 3}
ROW = (10, 2.5, "hello world", 9374)  # dt = 1995-09-01


def ev(expr, row=ROW):
    return compile_expr(expr, POS)(row)


# ---------------------------------------------------------------- evaluation
def test_comparisons():
    assert ev(eq(col("a"), 10))
    assert ev(ne(col("a"), 11))
    assert ev(lt(col("b"), 3.0))
    assert ev(le(col("a"), 10))
    assert ev(gt(col("a"), 9))
    assert ev(ge(col("a"), 10))
    assert not ev(eq(col("a"), 11))


def test_logic():
    assert ev(and_(eq(col("a"), 10), lt(col("b"), 3.0)))
    assert not ev(and_(eq(col("a"), 10), gt(col("b"), 3.0)))
    assert ev(or_(eq(col("a"), 99), eq(col("a"), 10)))
    assert ev(not_(eq(col("a"), 99)))


def test_between_half_open():
    assert ev(between(col("a"), 10, 11))
    assert not ev(between(col("a"), 5, 10))  # exclusive high


def test_in_list():
    assert ev(in_(col("a"), (1, 10, 20)))
    assert not ev(in_(col("a"), (1, 2)))


def test_like_patterns():
    assert ev(like(col("s"), "hello%"))
    assert ev(like(col("s"), "%world"))
    assert ev(like(col("s"), "%llo wo%"))
    assert ev(like(col("s"), "hel_o%"))
    assert not ev(like(col("s"), "world%"))
    assert ev(not_like(col("s"), "bye%"))


def test_arithmetic():
    assert ev(mul(col("a"), 2)) == 20
    assert ev(sub(col("a"), col("b"))) == 7.5
    assert ev(div(col("a"), 4)) == 2.5


def test_case_expression():
    expr = case([(eq(col("a"), 10), "ten"), (eq(col("a"), 20), "twenty")], "other")
    assert ev(expr) == "ten"
    assert ev(expr, (20, 0, "", 0)) == "twenty"
    assert ev(expr, (5, 0, "", 0)) == "other"


def test_year_and_substring_functions():
    assert ev(year_of(col("dt"))) == 1995
    assert ev(substring(col("s"), 1, 5)) == "hello"
    assert ev(substring(col("s"), 7, 5)) == "world"


def test_operator_sugar():
    assert ev(eq(col("a"), 10) & lt(col("b"), 3.0))
    assert ev(eq(col("a"), 0) | eq(col("a"), 10))


def test_missing_column_raises():
    with pytest.raises(KeyError):
        compile_expr(col("zzz"), POS)


def test_columns_of():
    expr = and_(eq(col("a"), 1), or_(lt(col("b"), 2), like(col("s"), "x%")))
    assert columns_of(expr) == ["a", "b", "s"]


# ------------------------------------------------------- offload analysis
def test_equality_is_best_candidate():
    mf = matcher_filter(and_(eq(col("a"), 5), between(col("dt"), 1, 9)))
    assert mf is not None
    assert mf.description.startswith("eq(")
    assert mf.key_count == 1


def test_in_list_counts_keys():
    mf = matcher_filter(in_(col("s"), ("aa", "bb", "cc")))
    assert mf.key_count == 3


def test_in_list_too_many_keys_rejected():
    assert matcher_filter(in_(col("s"), ("a", "b", "c", "d"))) is None


def test_or_of_equalities_single_column():
    mf = matcher_filter(or_(eq(col("a"), 1), eq(col("a"), 2)))
    assert mf is not None and mf.key_count == 2


def test_or_across_columns_rejected():
    assert matcher_filter(or_(eq(col("a"), 1), eq(col("b"), 2.0))) is None


def test_not_like_rejected():
    """The paper's named HW limitation."""
    assert matcher_filter(not_like(col("s"), "%spam%")) is None


def test_like_prefix_usable():
    mf = matcher_filter(like(col("s"), "forest%"))
    assert mf is not None


def test_like_inner_literal_usable():
    assert matcher_filter(like(col("s"), "%green%")) is not None


def test_like_short_literals_rejected():
    assert matcher_filter(like(col("s"), "%a_b%")) is None


def test_range_usable_as_one_key():
    mf = matcher_filter(between(col("dt"), 100, 200))
    assert mf is not None and mf.key_count == 1


def test_half_range_usable():
    assert matcher_filter(le(col("dt"), 100)) is not None


def test_column_to_column_rejected():
    assert matcher_filter(lt(col("a"), col("b"))) is None


def test_function_column_rejected():
    assert matcher_filter(in_(substring(col("s"), 1, 2), ("he", "wo"))) is None


def test_none_predicate():
    assert matcher_filter(None) is None
    assert matcher_candidates(None) == []


def test_candidates_ordered_by_priority():
    pred = and_(between(col("dt"), 1, 2), eq(col("a"), 1), like(col("s"), "abc%"))
    candidates = matcher_candidates(pred)
    assert len(candidates) == 3
    assert candidates[0].description.startswith("eq(")
    assert isinstance(candidates[-1].conjunct, Between)
