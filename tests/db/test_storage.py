"""Row/page codecs, heap files, indexes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.catalog import Catalog, Column, TableSchema, d, date_to_int, int_to_date
from repro.db.storage import Database, decode_rows, encode_row, pack_pages
from repro.host.platform import System

SCHEMA = TableSchema(
    "things",
    [Column("id", "int"), Column("name", "str"), Column("price", "float"),
     Column("when", "date")],
    primary_key=("id",),
)


# ----------------------------------------------------------------- catalog
def test_column_type_validated():
    with pytest.raises(ValueError):
        Column("x", "varchar")


def test_duplicate_column_rejected():
    with pytest.raises(ValueError):
        TableSchema("t", [Column("a", "int"), Column("a", "str")])


def test_unknown_key_column_rejected():
    with pytest.raises(ValueError):
        TableSchema("t", [Column("a", "int")], primary_key=("b",))


def test_positions():
    assert SCHEMA.position("price") == 2
    with pytest.raises(KeyError):
        SCHEMA.position("nope")


def test_catalog_add_get():
    catalog = Catalog()
    catalog.add(SCHEMA)
    assert catalog.get("things") is SCHEMA
    assert "things" in catalog
    with pytest.raises(ValueError):
        catalog.add(SCHEMA)
    with pytest.raises(KeyError):
        catalog.get("other")


def test_date_conversion_roundtrip():
    assert int_to_date(date_to_int("1995-09-01")) == "1995-09-01"
    assert d("1970-01-01") == 0
    assert d("1970-01-02") == 1


# ------------------------------------------------------------------- codec
def test_row_roundtrip():
    row = (7, "wídget", 3.25, d("1994-06-01"))
    page = (len(row) and b"\x01\x00") + encode_row(SCHEMA, row)
    decoded = decode_rows(SCHEMA, page)
    assert decoded == [row]


def test_wrong_width_rejected():
    with pytest.raises(ValueError):
        encode_row(SCHEMA, (1, "x", 2.0))


def test_pack_pages_respects_page_size():
    rows = [(i, "name-%d" % i, float(i), i) for i in range(500)]
    blob, counts = pack_pages(SCHEMA, rows, 4096)
    assert len(blob) % 4096 == 0
    assert sum(counts) == 500
    assert all(count > 0 for count in counts)


def test_row_larger_than_page_rejected():
    big = (1, "x" * 5000, 1.0, 0)
    with pytest.raises(ValueError):
        pack_pages(SCHEMA, [big], 4096)


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(
        st.integers(-2**60, 2**60),
        st.text(max_size=50),
        st.floats(allow_nan=False, allow_infinity=False),
        st.integers(0, 40000),
    ),
    max_size=30,
))
def test_property_pages_roundtrip(rows):
    blob, counts = pack_pages(SCHEMA, rows, 4096)
    out = []
    for page_no in range(len(counts)):
        out.extend(decode_rows(SCHEMA, blob[page_no * 4096:(page_no + 1) * 4096]))
    assert out == rows


# ---------------------------------------------------------------- database
def make_db():
    system = System()
    db = Database(system.fs)
    rows = [(i, "item-%d" % i, i * 1.5, 1000 + i % 7) for i in range(200)]
    storage = db.load_table(SCHEMA, rows)
    return system, db, storage, rows


def test_load_table_and_read_back():
    system, db, storage, rows = make_db()
    assert storage.num_rows == 200
    out = []
    for page_no in range(storage.num_pages):
        out.extend(db.read_page_rows(storage, page_no))
    assert out == rows


def test_primary_index_built():
    _, db, storage, rows = make_db()
    assert storage.has_index("id")
    pages = storage.index_pages("id", 150)
    assert len(pages) == 1
    found = [r for r in db.read_page_rows(storage, pages[0]) if r[0] == 150]
    assert found == [rows[150]]


def test_index_missing_key_empty():
    _, _, storage, _ = make_db()
    assert storage.index_pages("id", 99999) == []


def test_index_pages_per_key():
    _, _, storage, _ = make_db()
    assert storage.index_pages_per_key("id") == 1.0


def test_reload_replaces_table():
    system, db, storage, _ = make_db()
    # Loading again must replace, not duplicate, the heap file.
    schema2 = TableSchema("things2", SCHEMA.columns, primary_key=("id",))
    db.load_table(schema2, [(1, "a", 1.0, 0)])
    assert db.table("things2").num_rows == 1


def test_unknown_table():
    _, db, _, _ = make_db()
    with pytest.raises(KeyError):
        db.table("ghosts")
