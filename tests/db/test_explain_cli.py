"""EXPLAIN output and the MiniDB command line."""

import pytest

from repro.db.sql import run_explain

FIG8 = "SELECT l_orderkey FROM lineitem WHERE l_shipdate = '1995-01-17'"
Q14ISH = """
    SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue
    FROM lineitem JOIN part ON l_partkey = p_partkey
    WHERE l_shipdate BETWEEN '1995-09-01' AND '1995-09-30'
"""


def test_explain_conv_shows_seqscan(tpch_engines):
    conv, _ = tpch_engines
    plan = run_explain(conv, FIG8)
    assert "conv engine" in plan
    assert "SeqScan" in plan
    assert "NDPScan" not in plan


def test_explain_biscuit_shows_offload(tpch_engines):
    _, biscuit = tpch_engines
    plan = run_explain(biscuit, FIG8)
    assert "NDPScan" in plan
    assert "selectivity" in plan


def test_explain_join_orders_differ(tpch_engines):
    conv, biscuit = tpch_engines
    conv_plan = run_explain(conv, Q14ISH).splitlines()
    biscuit_plan = run_explain(biscuit, Q14ISH).splitlines()
    assert "part" in conv_plan[1]  # smallest table drives Conv
    assert "lineitem" in biscuit_plan[1]  # the NDP scan drives Biscuit
    assert "IndexProbe" in conv_plan[2]


def test_explain_rejection_reason(tpch_engines):
    _, biscuit = tpch_engines
    plan = run_explain(
        biscuit, "SELECT o_orderkey FROM orders WHERE o_totalprice > 1000"
    )
    assert "no offload" in plan


def test_explain_aggregate_and_order(tpch_engines):
    conv, _ = tpch_engines
    plan = run_explain(conv, """
        SELECT l_shipmode, COUNT(*) AS n FROM lineitem
        GROUP BY l_shipmode ORDER BY n DESC LIMIT 3
    """)
    assert "aggregate by [l_shipmode]" in plan
    assert "order by n DESC limit 3" in plan


# --------------------------------------------------------------------- CLI
def run_cli(args, capsys):
    from repro.db.__main__ import main

    code = main(args)
    captured = capsys.readouterr()
    return code, captured.out


def test_cli_sql(capsys):
    code, out = run_cli(
        ["SELECT COUNT(*) AS n FROM region", "--sf", "0.002", "--mode", "conv"],
        capsys,
    )
    assert code == 0
    assert "conv engine" in out
    assert "1 rows" in out


def test_cli_explain(capsys):
    code, out = run_cli(
        [FIG8, "--sf", "0.002", "--mode", "biscuit", "--explain"], capsys
    )
    assert code == 0
    assert "plan (biscuit engine)" in out


def test_cli_tpch_query(capsys):
    code, out = run_cli(["--tpch", "6", "--sf", "0.002", "--mode", "both"], capsys)
    assert code == 0
    assert "speed-up" in out


def test_cli_renders_dates(capsys):
    code, out = run_cli(
        ["SELECT o_orderdate FROM orders LIMIT 1", "--sf", "0.002",
         "--mode", "conv"],
        capsys,
    )
    assert code == 0
    assert "19" in out and "-" in out  # a rendered YYYY-MM-DD date


def test_cli_argument_validation():
    from repro.db.__main__ import main

    with pytest.raises(SystemExit):
        main([])  # neither SQL nor --tpch
    with pytest.raises(SystemExit):
        main(["SELECT 1 FROM x", "--tpch", "3"])  # both
    with pytest.raises(SystemExit):
        main(["--tpch", "99"])
