"""Bounded queues: FIFO, backpressure, close semantics, conservation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.queues import BoundedQueue, QueueClosed, QueueFull


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        BoundedQueue(Simulator(), capacity=0)


def test_put_get_fifo():
    sim = Simulator()
    queue = BoundedQueue(sim, capacity=8)
    out = []

    def producer():
        for i in range(5):
            yield queue.put(i)

    def consumer():
        for _ in range(5):
            out.append((yield queue.get()))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert out == [0, 1, 2, 3, 4]


def test_put_blocks_when_full():
    sim = Simulator()
    queue = BoundedQueue(sim, capacity=2)
    progress = []

    def producer():
        for i in range(4):
            yield queue.put(i)
            progress.append(i)

    def consumer():
        yield sim.timeout(1000)
        while len(queue):
            queue.try_get()
            yield sim.timeout(1000)

    sim.process(producer())
    sim.process(consumer())
    sim.run(until=500)
    # Only the first two puts landed before the consumer started draining.
    assert progress == [0, 1]
    sim.run()
    assert progress == [0, 1, 2, 3]


def test_get_blocks_when_empty():
    sim = Simulator()
    queue = BoundedQueue(sim)
    got = []

    def consumer():
        got.append((yield queue.get()))

    sim.process(consumer())
    sim.run(until=100)
    assert got == []
    queue.put("late")
    sim.run()
    assert got == ["late"]


def test_close_drains_then_raises():
    sim = Simulator()
    queue = BoundedQueue(sim, capacity=4)
    result = {}

    def consumer():
        items = []
        while True:
            try:
                items.append((yield queue.get()))
            except QueueClosed:
                result["items"] = items
                return

    def producer():
        for i in range(3):
            yield queue.put(i)
        queue.close()

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert result["items"] == [0, 1, 2]


def test_put_after_close_fails():
    sim = Simulator()
    queue = BoundedQueue(sim)
    queue.close()

    def producer():
        try:
            yield queue.put(1)
        except QueueClosed:
            return "refused"

    assert sim.run(sim.process(producer())) == "refused"


def test_close_fails_pending_getters():
    sim = Simulator()
    queue = BoundedQueue(sim)

    def consumer():
        try:
            yield queue.get()
        except QueueClosed:
            return "closed"

    proc = sim.process(consumer())
    sim.run(until=10)
    queue.close()
    assert sim.run(proc) == "closed"


def test_close_idempotent():
    queue = BoundedQueue(Simulator())
    queue.close()
    queue.close()
    assert queue.closed


def test_try_put_and_try_get():
    sim = Simulator()
    queue = BoundedQueue(sim, capacity=2)
    queue.try_put("a")
    queue.try_put("b")
    with pytest.raises(QueueFull):
        queue.try_put("c")
    assert queue.try_get() == "a"
    assert queue.try_get() == "b"
    with pytest.raises(IndexError):
        queue.try_get()


def test_try_put_on_closed_queue():
    queue = BoundedQueue(Simulator())
    queue.close()
    with pytest.raises(QueueClosed):
        queue.try_put(1)


def test_len_full_empty():
    queue = BoundedQueue(Simulator(), capacity=2)
    assert queue.empty and not queue.full and len(queue) == 0
    queue.try_put(1)
    queue.try_put(2)
    assert queue.full and not queue.empty and len(queue) == 2


def test_multiple_producers_single_consumer():
    sim = Simulator()
    queue = BoundedQueue(sim, capacity=4)
    received = []

    def producer(tag):
        for i in range(10):
            yield queue.put((tag, i))

    def consumer():
        for _ in range(30):
            received.append((yield queue.get()))

    for tag in "abc":
        sim.process(producer(tag))
    sim.process(consumer())
    sim.run()
    assert len(received) == 30
    # Per-producer order preserved even when interleaved.
    for tag in "abc":
        assert [i for t, i in received if t == tag] == list(range(10))


def test_single_producer_multiple_consumers_share_items():
    sim = Simulator()
    queue = BoundedQueue(sim, capacity=4)
    received = {"x": [], "y": []}

    def producer():
        for i in range(20):
            yield queue.put(i)
        queue.close()

    def consumer(name):
        while True:
            try:
                item = yield queue.get()
            except QueueClosed:
                return
            received[name].append(item)

    sim.process(producer())
    sim.process(consumer("x"))
    sim.process(consumer("y"))
    sim.run()
    # Work-sharing, not broadcast: every item delivered exactly once.
    assert sorted(received["x"] + received["y"]) == list(range(20))
    assert received["x"] and received["y"]


@settings(max_examples=40, deadline=None)
@given(
    items=st.lists(st.integers(), min_size=0, max_size=60),
    capacity=st.integers(min_value=1, max_value=7),
)
def test_property_fifo_and_conservation(items, capacity):
    """Whatever the capacity, everything comes out once, in order."""
    sim = Simulator()
    queue = BoundedQueue(sim, capacity=capacity)
    out = []

    def producer():
        for item in items:
            yield queue.put(item)
        queue.close()

    def consumer():
        while True:
            try:
                out.append((yield queue.get()))
            except QueueClosed:
                return

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert out == items
    assert queue.total_put == queue.total_got == len(items)
