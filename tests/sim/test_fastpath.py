"""Unit tests for the fused NAND timing fast path (repro.sim.fastpath).

Every test pits the analytic schedule against the per-event protocol on
the same Channel stimulus and requires *exact* equality — the fast path's
contract is bit-identical timestamps, not approximation.
"""

from collections import deque

import pytest

from repro.sim.engine import Simulator
from repro.sim.fastpath import FusedTimingCalculator
from repro.sim.units import transfer_ns, us_to_ns
from repro.ssd.config import SSDConfig
from repro.ssd.nand import Channel

SIZES = (16384, 16384, 4096, 16384, 8192, 16384, 16384, 12288, 16384, 2048)


def _config() -> SSDConfig:
    return SSDConfig()


def _slow_run(config, arrivals):
    """Per-event arm: ``arrivals`` is [(time_ns, [sizes])]; ops spawn in
    list order at each arrival time.  Returns per-op completions + stats."""
    sim = Simulator()
    channel = Channel(sim, config, 0)
    completions = {}

    def op(key, size):
        yield from channel.read(size)
        completions[key] = sim.now

    def feeder():
        clock = 0
        for at_ns, sizes in arrivals:
            if at_ns > clock:
                yield sim.timeout(at_ns - clock)
                clock = at_ns
            for i, size in enumerate(sizes):
                sim.process(op((at_ns, i), size), name="op")

    sim.process(feeder(), name="feeder")
    sim.run()
    return completions, sim, channel


def _fast_run(config, arrivals):
    """Fused arm for the same stimulus; completions read off the plans."""
    sim = Simulator()
    channel = Channel(sim, config, 0)
    completions = {}

    def feeder():
        clock = 0
        for at_ns, sizes in arrivals:
            if at_ns > clock:
                yield sim.timeout(at_ns - clock)
                clock = at_ns
            fused = channel.try_fuse_reads(tuple(sizes))
            assert fused is not None
            batch = channel.fastpath._batches[-1]
            for i, times in enumerate(batch.rel_times):
                completions[(at_ns, i)] = batch.base_ns + times[3]

    sim.process(feeder(), name="feeder")
    sim.run()
    return completions, sim, channel


def test_fused_schedule_matches_per_event_protocol():
    config = _config()
    arrivals = [(0, list(SIZES))]
    slow_done, slow_sim, slow_ch = _slow_run(config, arrivals)
    fast_done, fast_sim, fast_ch = _fast_run(config, arrivals)
    assert fast_done == slow_done  # every op, bit-identical completion
    assert fast_sim.now == slow_sim.now
    assert fast_ch.bytes_read == slow_ch.bytes_read == sum(SIZES)
    assert fast_ch.reads == slow_ch.reads == len(SIZES)
    # The point of fusing: the whole batch retires in a handful of events.
    assert fast_sim.events_processed < slow_sim.events_processed / 4


def test_chained_batches_match_staggered_arrivals():
    """A batch arriving while fused plans are in flight chains onto the
    analytic queue state — exactly the per-event FIFO it stands in for."""
    config = _config()
    first = [16384] * 6
    second = [16384, 8192, 16384]
    mid_ns = us_to_ns(config.nand_read_us) + 5_000  # inside the first plan
    arrivals = [(0, first), (mid_ns, second)]
    slow_done, slow_sim, slow_ch = _slow_run(config, arrivals)
    fast_done, fast_sim, fast_ch = _fast_run(config, arrivals)
    assert fast_done == slow_done
    assert fast_sim.now == slow_sim.now
    assert fast_ch.bytes_read == slow_ch.bytes_read
    assert fast_ch.fastpath.fused_batches == 2


def test_utilization_identical_after_settle():
    config = _config()
    arrivals = [(0, list(SIZES))]
    _done, slow_sim, slow_ch = _slow_run(config, arrivals)
    _done, fast_sim, fast_ch = _fast_run(config, arrivals)
    assert fast_sim.now == slow_sim.now
    assert fast_ch.dies.busy_area() == slow_ch.dies.busy_area()
    assert fast_ch.bus.busy_area() == slow_ch.bus.busy_area()
    assert fast_ch.dies.utilization() == slow_ch.dies.utilization()


def test_calculator_cache_is_offset_invariant():
    """Same relative queue state at a different absolute time is a cache
    hit and yields the same relative schedule."""
    calc = FusedTimingCalculator()
    sizes = (16384, 8192, 16384)
    die_a = deque([0, 0])
    rel_a, bus_a, dies_area_a, bus_area_a = calc.schedule(
        0, die_a, 0, 52_600, 275e6, sizes)
    die_b = deque([7_000, 7_000])
    rel_b, bus_b, dies_area_b, bus_area_b = calc.schedule(
        7_000, die_b, 7_000, 52_600, 275e6, sizes)
    assert calc.cache_misses == 1
    assert calc.cache_hits == 1
    assert rel_a == rel_b
    assert dies_area_a == dies_area_b
    assert bus_area_a == bus_area_b
    assert bus_b - bus_a == 7_000
    assert [t - 7_000 for t in die_b] == list(die_a)
    # The analytic schedule itself: serialized transfers, senses overlapped.
    sense = 52_600
    expected_bus_busy = sum(transfer_ns(s, 275e6) for s in sizes)
    assert bus_area_a == expected_bus_busy
    assert rel_a[0][0] == 0 and rel_a[0][1] == sense


def test_no_fusion_while_channel_has_real_traffic():
    config = _config()
    sim = Simulator()
    channel = Channel(sim, config, 0)
    outcome = {}

    def slow_op():
        yield from channel.read(16384)

    def prober():
        yield sim.timeout(1_000)  # the slow op is mid-sense
        outcome["fused"] = channel.try_fuse_reads((16384, 16384))

    sim.process(slow_op(), name="slow")
    sim.process(prober(), name="probe")
    sim.run()
    assert outcome["fused"] is None
    assert channel.fastpath.fused_batches == 0


def test_no_fusion_under_tracing():
    config = _config()
    sim = Simulator()
    channel = Channel(sim, config, 0)
    sim.trace = object()  # any active trace sink disables fusion
    assert channel.try_fuse_reads((16384,)) is None


def test_counters_shape():
    config = _config()
    _done, _sim, channel = _fast_run(config, [(0, [16384, 16384])])
    counters = channel.fastpath.counters()
    assert counters["fused_batches"] == 1
    assert counters["fused_pages"] == 2
    assert counters["materializations"] == 0
    assert counters["timing_cache_misses"] >= 1


def test_transfer_size_still_validated():
    config = _config()
    sim = Simulator()
    channel = Channel(sim, config, 0)
    with pytest.raises(ValueError):
        channel.try_fuse_reads((config.physical_page_bytes + 1,))
    with pytest.raises(ValueError):
        channel.try_fuse_reads((0,))
