"""Interrupting a fiber with an in-flight grant must not leak the grant.

Hedged/coalesced reads cancel their losing leg with ``Process.interrupt``
at arbitrary points — including the window *between* a Resource/Store grant
being made (units moved, succeed scheduled) and the grant event being
processed.  Before the reclaim fix, a leg interrupted inside that window
kept the units forever (a doubly-granted leak); and a wait target that
later *failed* with nobody listening crashed the whole simulation.
"""

import pytest

from repro.sim.engine import Event, Interrupt, SimulationError, Simulator
from repro.sim.resources import Resource, Store


# ------------------------------------------------------- resource grant leak
def test_interrupt_between_grant_and_processing_returns_units():
    """Release at t=10 grants to the waiter; interrupting the waiter in the
    same timestep (before its resume runs) must give the units back."""
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    waiter_box = {}

    def holder():
        yield resource.request()
        yield sim.timeout(10)
        resource.release()  # grants to the waiter *now*, resume pending
        waiter_box["proc"].interrupt("cancelled in the grant window")

    def waiter():
        try:
            yield resource.request()
        except Interrupt:
            return "interrupted"
        resource.release()
        return "granted"

    sim.process(holder())  # acquires first: the waiter queues behind it
    waiter_box["proc"] = sim.process(waiter())
    sim.run()
    assert waiter_box["proc"].value == "interrupted"
    # The reclaim callback must have returned the in-flight grant.
    assert resource.in_use == 0
    assert resource.available == 1


def test_reclaimed_units_flow_to_the_next_waiter():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    grants = []
    box = {}

    def holder():
        yield resource.request()
        yield sim.timeout(10)
        resource.release()
        box["victim"].interrupt()

    def victim():
        try:
            yield resource.request()
        except Interrupt:
            pass

    def heir():
        yield sim.timeout(1)  # queue behind the victim
        yield resource.request()
        grants.append(sim.now)
        resource.release()

    sim.process(holder())
    box["victim"] = sim.process(victim())
    sim.process(heir())
    sim.run()
    assert grants == [10]
    assert resource.in_use == 0


def test_store_item_handed_to_interrupted_getter_is_reput():
    sim = Simulator()
    store = Store(sim)
    box = {}
    taken = []

    def producer():
        yield sim.timeout(5)
        store.put("item")  # hands to the parked getter, resume pending
        box["victim"].interrupt()

    def victim():
        try:
            yield store.get()
        except Interrupt:
            pass

    def heir():
        yield sim.timeout(1)
        value = yield store.get()
        taken.append((sim.now, value))

    sim.process(producer())
    box["victim"] = sim.process(victim())
    sim.process(heir())
    sim.run()
    assert taken == [(5, "item")]
    assert len(store) == 0


# ------------------------------------------------- abandoned-target failures
def test_failure_of_abandoned_wait_target_does_not_crash_the_sim():
    """A losing hedge leg is interrupted while waiting on an event that then
    fails; with the leg gone, the failure has no listener and must be
    swallowed (defused), not raised as an unhandled simulation error."""
    sim = Simulator()
    doomed = Event(sim)
    box = {}

    def controller():
        yield sim.timeout(5)
        box["leg"].interrupt("hedge loser")
        yield sim.timeout(5)
        doomed.fail(RuntimeError("stripe read died"))
        yield sim.timeout(5)
        return "survived"

    def leg():
        try:
            yield doomed
        except Interrupt:
            return "cancelled"
        return "completed"

    box["leg"] = sim.process(leg())
    value = sim.run(sim.process(controller()))
    assert value == "survived"
    assert box["leg"].value == "cancelled"


def test_unwatched_failures_still_raise_without_an_interrupt():
    """The defusing is scoped to interrupted waits: an event that fails with
    no listeners and no interrupt remains an unhandled failure."""
    sim = Simulator()
    doomed = Event(sim)

    def igniter():
        yield sim.timeout(1)
        doomed.fail(RuntimeError("nobody is listening"))

    sim.process(igniter())
    with pytest.raises(SimulationError):
        sim.run()


def test_non_abandoned_grants_unaffected_by_reclaim_callback():
    """The reclaim callback is a no-op on the normal path: grants still
    deliver exactly once, bookkeeping unchanged."""
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    log = []

    def user(tag, hold):
        yield resource.request()
        log.append(("got", tag, sim.now))
        yield sim.timeout(hold)
        resource.release()

    for index, hold in enumerate((7, 11, 13)):
        sim.process(user(index, hold))
    sim.run()
    assert [entry[0] for entry in log] == ["got"] * 3
    assert resource.in_use == 0
    assert resource.available == 2
