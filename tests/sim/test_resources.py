"""Counting resources and stores."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.resources import Resource, Store


def test_capacity_validation():
    with pytest.raises(ValueError):
        Resource(Simulator(), capacity=0)


def test_request_within_capacity_is_immediate():
    sim = Simulator()
    resource = Resource(sim, capacity=2)

    def fiber():
        yield resource.request()
        yield resource.request()
        return sim.now

    assert sim.run(sim.process(fiber())) == 0
    assert resource.in_use == 2
    assert resource.available == 0


def test_request_blocks_until_release():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    times = {}

    def holder():
        yield resource.request()
        yield sim.timeout(100)
        resource.release()

    def waiter():
        yield sim.timeout(1)
        yield resource.request()
        times["granted"] = sim.now
        resource.release()

    sim.process(holder())
    sim.process(waiter())
    sim.run()
    assert times["granted"] == 100


def test_fifo_grant_order():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    order = []

    def holder():
        yield resource.request()
        yield sim.timeout(10)
        resource.release()

    def waiter(tag, delay):
        yield sim.timeout(delay)
        yield resource.request()
        order.append(tag)
        yield sim.timeout(5)
        resource.release()

    sim.process(holder())
    for tag, delay in (("first", 1), ("second", 2), ("third", 3)):
        sim.process(waiter(tag, delay))
    sim.run()
    assert order == ["first", "second", "third"]


def test_oversized_request_rejected():
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    with pytest.raises(ValueError):
        resource.request(3)


def test_release_more_than_held_rejected():
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    with pytest.raises(ValueError):
        resource.release()


def test_utilization_accounting():
    sim = Simulator()
    resource = Resource(sim, capacity=2)

    def fiber():
        yield resource.request()
        yield sim.timeout(100)
        resource.release()
        yield sim.timeout(100)

    sim.run(sim.process(fiber()))
    # 1 of 2 units held for half the elapsed time: utilization 0.25.
    assert abs(resource.utilization() - 0.25) < 1e-9
    assert resource.busy_area() == 100


def test_multi_unit_request():
    sim = Simulator()
    resource = Resource(sim, capacity=4)
    log = []

    def big():
        yield resource.request(3)
        log.append(("big", sim.now))
        yield sim.timeout(50)
        resource.release(3)

    def small():
        yield sim.timeout(1)
        yield resource.request(2)
        log.append(("small", sim.now))
        resource.release(2)

    sim.process(big())
    sim.process(small())
    sim.run()
    assert log == [("big", 0), ("small", 50)]


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    assert len(store) == 1

    def consumer():
        return (yield store.get())

    assert sim.run(sim.process(consumer())) == "x"


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    result = {}

    def consumer():
        result["value"] = yield store.get()
        result["time"] = sim.now

    def producer():
        yield sim.timeout(42)
        store.put("late")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert result == {"value": "late", "time": 42}
