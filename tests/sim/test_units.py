"""Unit-conversion helpers."""

import pytest

from repro.sim.units import (
    GIB,
    KIB,
    MIB,
    ms_to_ns,
    ns_to_s,
    ns_to_us,
    s_to_ns,
    transfer_ns,
    us_to_ns,
)


def test_byte_sizes():
    assert KIB == 1024
    assert MIB == 1024 ** 2
    assert GIB == 1024 ** 3


def test_time_conversions_roundtrip():
    assert us_to_ns(1.5) == 1500
    assert ms_to_ns(2) == 2_000_000
    assert s_to_ns(0.25) == 250_000_000
    assert ns_to_us(1500) == 1.5
    assert ns_to_s(1_000_000_000) == 1.0


def test_transfer_time():
    assert transfer_ns(1_000_000_000, 1e9) == 1_000_000_000  # 1 GB at 1 GB/s
    assert transfer_ns(0, 1e9) == 0
    assert transfer_ns(1, 1e12) == 1  # rounds up to at least 1 ns


def test_transfer_requires_positive_rate():
    with pytest.raises(ValueError):
        transfer_ns(100, 0)
