"""Runtime interleaving sanitizer (repro.analysis.races.RaceMonitor).

The monitor footprints each event callback within the same-timestamp
batches the engine pops; tied events with conflicting footprints
(write/write or read/write on the same object field) are ordering hazards.
The planted positives reconstruct the repo's two historical race shapes:
the PR 5 lost-interrupt bug (interrupt mutating a triggered-but-unprocessed
event that a tied entry dispatches) and a same-timestamp write/write on
shared fiber state.
"""

import pytest

from repro.analysis.races import (
    OrderingHazardError,
    check_workload,
    note_write,
)
from repro.sim.engine import Interrupt, Simulator
from repro.sim.resources import Resource, Store


# ------------------------------------------------------------ planted races
def lost_interrupt_reconstruction(race_check="on"):
    """The PR 5 shape: fiber B interrupts a process whose wait target
    already triggered in the same timestep.  B's interrupt mutates the
    target's state and callback list while the target's own dispatch — a
    *tied* heap entry — consumes them: which wins depends on pop order.
    (The engine now handles both orders; the monitor must still flag the
    footprint conflict, because it is what made the original bug latent.)
    """
    sim = Simulator(race_check=race_check)
    gate = sim.event()
    outcome = {}

    def victim():
        try:
            yield gate
        except Interrupt:
            outcome["victim"] = "interrupted"
            return
        outcome["victim"] = "resumed"

    victim_proc = sim.process(victim())

    def interrupter():
        yield sim.timeout(10)
        yield sim.timeout(0)  # land in the same batch as A's succeed
        victim_proc.interrupt("tied")

    def succeeder():
        yield sim.timeout(10)
        gate.succeed("value")

    sim.process(interrupter())  # created first: dispatches first in the tie
    sim.process(succeeder())
    sim.run()
    return sim, outcome


def test_lost_interrupt_race_is_detected():
    sim, outcome = lost_interrupt_reconstruction()
    assert outcome["victim"] == "interrupted"  # PR 5 semantics still hold
    hazards = sim.race.hazards
    assert hazards, "the PR 5 interleaving must be flagged"
    assert any(h.kinds == "read/write" and h.obj_field in ("state", "callbacks")
               for h in hazards)


def test_strict_mode_raises_on_the_lost_interrupt_race():
    with pytest.raises(OrderingHazardError):
        lost_interrupt_reconstruction(race_check="strict")


def test_synthetic_same_timestamp_write_write_collision():
    sim = Simulator(race_check=True)
    shared = {"count": 0}

    def bumper():
        yield sim.timeout(10)
        note_write(sim, shared, "count")
        shared["count"] += 1

    sim.process(bumper())
    sim.process(bumper())
    sim.run()
    assert any(h.kinds == "write/write" and h.obj_field == "count"
               for h in sim.race.hazards)
    assert shared["count"] == 2


def test_hazard_report_carries_time_and_parties():
    sim, _ = lost_interrupt_reconstruction()
    rendered = sim.race.report()
    assert rendered
    assert any("t=10ns" in line and "tied events" in line for line in rendered)


# ------------------------------------------------------- ordered, not racy
def test_fifo_contention_is_ordered_not_hazardous():
    """Two tied fibers requesting the same Resource: grant order is pinned
    by the engine's sequence numbers by design — no hazard, but the batch
    must be pinned against perturbation."""
    sim = Simulator(race_check=True)
    bus = Resource(sim, capacity=1)
    order = []

    def user(tag):
        yield sim.timeout(10)
        yield bus.request()
        order.append(tag)
        bus.release()

    sim.process(user("a"))
    sim.process(user("b"))
    sim.run()
    assert order == ["a", "b"]
    assert sim.race.hazards == []


def test_store_handoff_is_ordered_not_hazardous():
    sim = Simulator(race_check=True)
    store = Store(sim)
    taken = []

    def producer(tag):
        yield sim.timeout(10)
        store.put(tag)

    def consumer():
        value = yield store.get()
        taken.append(value)

    sim.process(producer("x"))
    sim.process(producer("y"))
    sim.process(consumer())
    sim.process(consumer())
    sim.run()
    assert sorted(taken) == ["x", "y"]
    assert sim.race.hazards == []


def test_interrupt_reclaim_in_grant_window_is_not_flagged():
    """The *fixed* PR 5-adjacent flow (grant then same-timestep interrupt,
    tests/sim/test_interrupt_reclaim.py): the interrupt and the grant's
    dispatch land in structurally ordered (different) batches, so the
    monitor must not cry wolf."""
    sim = Simulator(race_check=True)
    resource = Resource(sim, capacity=1)
    box = {}

    def holder():
        yield resource.request()
        yield sim.timeout(10)
        resource.release()
        box["proc"].interrupt("cancelled in the grant window")

    def waiter():
        try:
            yield resource.request()
        except Interrupt:
            return "interrupted"
        resource.release()
        return "granted"

    sim.process(holder())
    box["proc"] = sim.process(waiter())
    sim.run()
    assert box["proc"].value == "interrupted"
    assert resource.in_use == 0
    assert sim.race.hazards == []


# ------------------------------------------------------------- activation
def test_env_var_enables_the_monitor(monkeypatch):
    monkeypatch.setenv("REPRO_RACE_CHECK", "1")
    assert Simulator().race is not None
    monkeypatch.setenv("REPRO_RACE_CHECK", "strict")
    assert Simulator().race.strict is True
    monkeypatch.setenv("REPRO_RACE_CHECK", "0")
    assert Simulator().race is None
    monkeypatch.delenv("REPRO_RACE_CHECK")
    assert Simulator().race is None
    assert Simulator(race_check=False).race is None


def test_monitor_off_by_default_and_free_of_cost_hooks():
    sim = Simulator()
    assert sim.race is None


# ----------------------------------------------------------- perturbation
def clean_pipeline_workload():
    """A deterministic fan-out with genuinely independent tied events."""
    sim = Simulator()
    done = []

    def leaf(tag, delay_ns):
        yield sim.timeout(10)       # all leaves tie at t=10
        yield sim.timeout(delay_ns)  # then diverge to distinct timestamps
        done.append((sim.now, tag))

    for index in range(5):
        sim.process(leaf(index, 3 + index))
    sim.run()
    return tuple(done)


def test_perturbation_reverses_order_free_batches_bit_identically():
    report = check_workload(clean_pipeline_workload)
    assert report.hazards == []
    assert report.reversed_batches > 0, "the t=10 batch must qualify"
    assert report.digests_match and report.results_match
    assert report.clean


def test_perturbation_convicts_hidden_shared_state():
    """A workload whose result depends on tie order, with the coupling
    hidden from the monitor (no note_write): the footprint pass sees
    nothing, but the reversed replay diverges — the digest/result check is
    the backstop."""

    def order_sensitive_workload():
        sim = Simulator()
        log = []

        def racer(tag, delay_ns):
            yield sim.timeout(10)  # the tie batch
            log.append(tag)        # hidden: order-sensitive shared write
            yield sim.timeout(delay_ns)  # distinct targets: batch reversible

        sim.process(racer("a", 3))
        sim.process(racer("b", 4))
        sim.run()
        return tuple(log)

    report = check_workload(order_sensitive_workload)
    assert not report.clean
    assert not (report.digests_match and report.results_match)


def test_declared_write_write_is_caught_not_perturbed():
    def hazardous_workload():
        sim = Simulator()
        shared = {"count": 0}

        def bumper():
            yield sim.timeout(10)
            note_write(sim, shared, "count")
            shared["count"] += 1

        sim.process(bumper())
        sim.process(bumper())
        sim.run()
        return shared["count"]

    report = check_workload(hazardous_workload)
    assert report.hazards
    assert not report.clean
