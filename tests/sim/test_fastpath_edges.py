"""Fast-path composition edges: faults, interrupts and writes mid-fusion.

Each scenario runs the same stimulus twice — fused plans on a clean channel
with an interferer landing *inside* the fused window, versus the pure
per-event protocol — and requires identical final time, identical channel
counters, and a channel left with every die/bus unit available.  This is
the satellite guard for PR6's resilience machinery: storms, retries and
``Process.interrupt`` must compose with fusion without a nanosecond of
drift.
"""

import pytest

from repro.core.errors import DeviceCrashedError, EccError, UncorrectableReadError
from repro.sim.engine import Interrupt, Simulator, all_of
from repro.ssd.config import SSDConfig
from repro.ssd.device import SSDDevice
from repro.ssd.nand import Channel
from repro.testing.faults import Fault

BATCH = (16384,) * 6

# Mid-window instants: during the first senses (nothing finished yet) and
# after a couple of transfers (part of the plan already retired).
MID_POINTS = (100_000, 200_000)


def _arm(fast: bool, interfere, mid_ns: int):
    """Run BATCH plus ``interfere(channel)`` at ``mid_ns``; return stats."""
    config = SSDConfig()
    sim = Simulator()
    channel = Channel(sim, config, 0)
    outcome = {}

    def dispatcher():
        if fast:
            fused = channel.try_fuse_reads(BATCH)
            assert fused is not None
            yield fused
        else:
            ops = [sim.process(channel.read(size), name="op%d" % i)
                   for i, size in enumerate(BATCH)]
            yield all_of(sim, ops)
        outcome["batch_done_ns"] = sim.now

    def interferer():
        yield sim.timeout(mid_ns)
        result = yield from interfere(channel)
        outcome["interferer"] = result
        outcome["interferer_done_ns"] = sim.now

    outcome["dispatcher"] = sim.process(dispatcher(), name="dispatcher")
    sim.process(interferer(), name="interferer")
    sim.run()
    outcome["now"] = sim.now
    outcome["bytes_read"] = channel.bytes_read
    outcome["reads"] = channel.reads
    outcome["programs"] = channel.programs
    outcome["erases"] = channel.erases
    outcome["dies_available"] = channel.dies.available
    outcome["bus_available"] = channel.bus.available
    outcome["fastpath"] = channel.fastpath.counters()
    return outcome


def _assert_arms_equal(fast, slow):
    for key in ("now", "batch_done_ns", "interferer", "interferer_done_ns",
                "bytes_read", "reads", "programs", "erases"):
        assert fast.get(key) == slow.get(key), key
    # No leaked holds in either arm: the channel is fully idle again.
    for arm in (fast, slow):
        assert arm["dies_available"] == SSDConfig().dies_per_channel
        assert arm["bus_available"] == 1


@pytest.mark.parametrize("mid_ns", MID_POINTS)
@pytest.mark.parametrize("kind,extra_ns,error", [
    ("ecc", 0, EccError),
    ("uncorrectable", 0, UncorrectableReadError),
    ("spike", 400_000, None),
    ("stall", 800_000, None),
])
def test_faulted_read_in_fused_window(kind, extra_ns, error, mid_ns):
    """A faulted per-event read arriving mid-plan de-fuses the channel and
    then times out/falls over exactly as it would have with no fusion."""
    def interfere(channel):
        try:
            yield from channel.read(16384, physical_page=7,
                                    fault=Fault(kind, extra_ns))
        except (EccError, UncorrectableReadError) as exc:
            return type(exc).__name__
        return "ok"

    fast = _arm(True, interfere, mid_ns)
    slow = _arm(False, interfere, mid_ns)
    _assert_arms_equal(fast, slow)
    assert fast["interferer"] == (error.__name__ if error else "ok")
    assert fast["fastpath"]["materializations"] == 1
    assert slow["fastpath"]["fused_batches"] == 0


@pytest.mark.parametrize("mid_ns", MID_POINTS)
def test_crash_in_fused_window_leaves_plans_exact(mid_ns):
    """A crash outcome fails fast without touching the channel, so the
    fused plans are NOT materialized — and still settle bit-identically."""
    def interfere(channel):
        try:
            yield from channel.read(16384, fault=Fault("crash"))
        except DeviceCrashedError:
            return "crashed"
        return "ok"

    fast = _arm(True, interfere, mid_ns)
    slow = _arm(False, interfere, mid_ns)
    _assert_arms_equal(fast, slow)
    assert fast["interferer"] == "crashed"
    assert fast["fastpath"]["materializations"] == 0
    assert fast["fastpath"]["fused_batches"] == 1


@pytest.mark.parametrize("mid_ns", MID_POINTS)
def test_program_and_erase_in_fused_window(mid_ns):
    """GC-shaped traffic (program + erase) de-fuses and then queues for
    the dies exactly as on the per-event path."""
    def interfere(channel):
        yield from channel.program(16384)
        yield from channel.erase()
        return "ok"

    fast = _arm(True, interfere, mid_ns)
    slow = _arm(False, interfere, mid_ns)
    _assert_arms_equal(fast, slow)
    assert fast["programs"] == 1 and fast["erases"] == 1
    assert fast["fastpath"]["materializations"] == 1


@pytest.mark.parametrize("mid_ns", MID_POINTS)
def test_interrupted_waiter_does_not_leak_the_plan(mid_ns):
    """Interrupting the fiber awaiting a fused batch must not leak dies,
    bus units, or byte accounting — the plan settles on its own, exactly
    like per-event ops whose all_of waiter was interrupted."""
    def _arm_interrupt(fast):
        config = SSDConfig()
        sim = Simulator()
        channel = Channel(sim, config, 0)
        outcome = {}

        def dispatcher():
            if fast:
                target = channel.try_fuse_reads(BATCH)
                assert target is not None
            else:
                ops = [sim.process(channel.read(size), name="op%d" % i)
                       for i, size in enumerate(BATCH)]
                target = all_of(sim, ops)
            try:
                yield target
            except Interrupt:
                return "interrupted"
            return "done"

        def canceller(proc):
            yield sim.timeout(mid_ns)
            proc.interrupt("hedge lost")

        proc = sim.process(dispatcher(), name="dispatcher")
        sim.process(canceller(proc), name="canceller")
        sim.run()
        return sim, channel, proc

    fast_sim, fast_ch, fast_proc = _arm_interrupt(True)
    slow_sim, slow_ch, slow_proc = _arm_interrupt(False)
    assert fast_proc.value == slow_proc.value == "interrupted"
    # The media work itself is not cancelled in either arm: it retires at
    # the same instant with the same accounting.
    assert fast_sim.now == slow_sim.now
    assert fast_ch.bytes_read == slow_ch.bytes_read == sum(BATCH)
    assert fast_ch.reads == slow_ch.reads == len(BATCH)
    for channel in (fast_ch, slow_ch):
        assert channel.dies.available == channel.dies.capacity
        assert channel.bus.available == 1


def test_cache_enabled_configs_never_fuse():
    """With the device read cache on, reads stay per-event (hits must not
    consume injector draws or skip cache bookkeeping) — and both fast-path
    settings produce identical timing."""
    def run(fast):
        config = SSDConfig(read_cache_bytes=64 * 16384, sim_fast_path=fast)
        sim = Simulator()
        device = SSDDevice(sim, config)
        def driver():
            yield from device.controller.read_pages(range(512))
            yield from device.controller.read_pages(range(512))  # warm pass
        sim.process(driver(), name="driver")
        sim.run()
        return sim, device

    fast_sim, fast_dev = run(True)
    slow_sim, slow_dev = run(False)
    assert fast_dev.controller.stats.fused_commands == 0
    assert fast_sim.now == slow_sim.now
    assert fast_dev.nand.bytes_read == slow_dev.nand.bytes_read
    assert fast_dev.cache.stats.hits == slow_dev.cache.stats.hits
    assert fast_dev.cache.stats.hits > 0  # the warm pass really hit


def test_fusion_engages_on_clean_controller_reads():
    config = SSDConfig()
    sim = Simulator()
    device = SSDDevice(sim, config)
    sim.process(device.controller.read_pages(range(2048)), name="driver")
    sim.run()
    assert device.controller.stats.fused_commands > 0
    assert device.controller.stats.fused_stripes > 0
