"""Regression tests for two event-loop bugs.

1. ``AnyOf``/``AllOf`` left a child that fails *after* the composite settled
   undefused — the loser of a hedged race escaping as an unhandled failure.
2. ``Simulator.run(until=event)`` permanently set ``sentinel.defused`` even
   when it raised ``SimulationError`` on heap exhaustion, so a later failure
   of that same event was silently swallowed by the next ``run()``.
"""

import pytest

from repro.sim.engine import SimulationError, Simulator, all_of, any_of


# --------------------------------------------------- late-failing race losers
def test_any_of_defuses_loser_failing_after_winner():
    """Hedged-read shape: the replica answers, then the primary dies."""
    sim = Simulator()

    def replica():
        yield sim.timeout(10)
        return "replica-data"

    def primary():
        yield sim.timeout(20)
        raise RuntimeError("primary failed after the race was decided")

    primary_proc = sim.process(primary())
    replica_proc = sim.process(replica())

    def hedged():
        value = yield any_of(sim, [primary_proc, replica_proc])
        return value

    assert sim.run(sim.process(hedged())) == "replica-data"
    # Draining past t=20 must absorb the loser's failure, not crash.
    sim.run()
    assert primary_proc.defused is True


def test_any_of_built_after_winner_defuses_late_loser():
    """The composite settles at construction (winner already processed); the
    still-running loser must not escape as an unhandled failure later."""
    sim = Simulator()
    winner = sim.event()
    winner.succeed("cached")
    sim.run(until=1)  # let the winner process

    def doomed():
        yield sim.timeout(20)
        raise RuntimeError("late loser")

    loser = sim.process(doomed())

    def hedged():
        value = yield any_of(sim, [loser, winner])
        return value

    assert sim.run(sim.process(hedged())) == "cached"
    sim.run()  # pre-fix: SimulationError("unhandled failure of <Process ...>")
    assert loser.defused is True


def test_all_of_defuses_child_failing_after_fail_fast():
    """AllOf fails fast on the first failure; a second child that fails later
    has nobody listening and must be defused."""
    sim = Simulator()

    def fast_failure():
        yield sim.timeout(5)
        raise RuntimeError("first")

    def slow_failure():
        yield sim.timeout(15)
        raise RuntimeError("second")

    slow = sim.process(slow_failure())
    gathered = all_of(sim, [sim.process(fast_failure()), slow])
    with pytest.raises(RuntimeError, match="first"):
        sim.run(gathered)
    sim.run()
    assert slow.defused is True


def test_all_of_built_after_failure_defuses_pending_child():
    """Fail-fast at construction (one child already failed and processed)
    must still absorb the other child's later failure."""
    sim = Simulator()
    failed = sim.event()
    failed.defused = True
    failed.fail(RuntimeError("already dead"))
    sim.run(until=1)

    def doomed():
        yield sim.timeout(20)
        raise RuntimeError("late")

    straggler = sim.process(doomed())
    gathered = all_of(sim, [failed, straggler])
    with pytest.raises(RuntimeError, match="already dead"):
        sim.run(gathered)
    sim.run()  # pre-fix: unhandled failure of the straggler
    assert straggler.defused is True


def test_any_of_succeeding_loser_still_ignored():
    """A loser that *succeeds* late stays a no-op (no defuse needed)."""
    sim = Simulator()

    def fiber(delay, value):
        yield sim.timeout(delay)
        return value

    first = sim.process(fiber(5, "first"))
    second = sim.process(fiber(10, "second"))
    assert sim.run(any_of(sim, [first, second])) == "first"
    sim.run()
    assert second.value == "second"


# ------------------------------------------- run(until=event) defused scoping
def test_run_until_event_restores_defused_on_exhaustion():
    sim = Simulator()
    lonely = sim.event()
    with pytest.raises(SimulationError, match="ran out of events"):
        sim.run(lonely)
    assert lonely.defused is False
    # The event later fails with nobody listening: that must still crash the
    # simulation as an unhandled failure (pre-fix it was silently swallowed).
    lonely.fail(RuntimeError("late failure"))
    with pytest.raises(SimulationError, match="unhandled failure"):
        sim.run()


def test_run_until_event_still_surfaces_sentinel_failure():
    """The normal path: run(until=event) raises the sentinel's own exception
    (the defused flag exists exactly so run() is the consumer)."""
    sim = Simulator()

    def doomed():
        yield sim.timeout(5)
        raise ValueError("sentinel exploded")

    with pytest.raises(ValueError, match="sentinel exploded"):
        sim.run(sim.process(doomed()))


def test_run_until_event_exhaustion_leaves_explicit_defuse_alone():
    """An event the caller already defused stays defused after exhaustion."""
    sim = Simulator()
    handled = sim.event()
    handled.defused = True
    with pytest.raises(SimulationError, match="ran out of events"):
        sim.run(handled)
    assert handled.defused is True
