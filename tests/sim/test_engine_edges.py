"""Simulator-core edge cases: condition events with failed / pre-triggered
children, interrupts landing mid-resource-wait, and whole-run determinism.
"""

import pytest

from repro.sim.engine import (
    Interrupt,
    SimulationError,
    Simulator,
    all_of,
    any_of,
)
from repro.sim.resources import Resource


# ------------------------------------------------------- AllOf / AnyOf edges
def test_all_of_with_already_failed_child_fails_immediately():
    sim = Simulator()
    bad = sim.event()
    bad.defused = True
    bad.fail(RuntimeError("pre-broken"))
    sim.run(sim.timeout(1))  # process the failure
    good = sim.timeout(10)

    def fiber():
        yield all_of(sim, [good, bad])

    with pytest.raises(RuntimeError, match="pre-broken"):
        sim.run(sim.process(fiber()))


def test_all_of_failure_defuses_second_concurrent_failure():
    sim = Simulator()

    def dies_at(delay, tag):
        yield sim.timeout(delay)
        raise RuntimeError(tag)

    def fiber():
        yield all_of(sim, [sim.process(dies_at(5, "first")),
                           sim.process(dies_at(7, "second"))])

    # Fails fast with the first failure; the second, later failure must be
    # defused by the condition rather than crashing the run as unhandled.
    with pytest.raises(RuntimeError, match="first"):
        sim.run(sim.process(fiber()))
    sim.run(sim.timeout(10))  # drain past the second failure: no explosion


def test_any_of_with_failing_first_child_propagates():
    sim = Simulator()

    def dies():
        yield sim.timeout(3)
        raise ValueError("boom")

    def fiber():
        yield any_of(sim, [sim.process(dies()), sim.timeout(100)])

    with pytest.raises(ValueError, match="boom"):
        sim.run(sim.process(fiber()))


def test_any_of_with_already_succeeded_child_short_circuits():
    sim = Simulator()
    done = sim.event()
    done.succeed("early")
    sim.run(sim.timeout(1))
    assert done.processed

    def fiber():
        value = yield any_of(sim, [done, sim.timeout(1000)])
        return value

    start = sim.now
    assert sim.run(sim.process(fiber())) == "early"
    assert sim.now == start  # no waiting on the slow child


def test_any_of_with_already_failed_child_fails_without_waiting():
    sim = Simulator()
    bad = sim.event()
    bad.defused = True
    bad.fail(KeyError("gone"))
    sim.run(sim.timeout(1))

    def fiber():
        yield any_of(sim, [bad, sim.timeout(1000)])

    with pytest.raises(KeyError):
        sim.run(sim.process(fiber()))


# --------------------------------------------------- interrupts in new waits
def test_interrupt_during_resource_wait_releases_nothing():
    sim = Simulator()
    lock = Resource(sim, capacity=1)
    state = {}

    def holder():
        yield lock.request()
        yield sim.timeout(100)
        lock.release()

    def waiter():
        try:
            yield lock.request()
            state["acquired"] = True
            lock.release()
        except Interrupt as interrupt:
            state["interrupted"] = interrupt.cause

    sim.process(holder())
    victim = sim.process(waiter())

    def supervisor():
        yield sim.timeout(10)  # victim is now parked in the resource queue
        victim.interrupt("impatient")

    sim.process(supervisor())
    sim.run(sim.timeout(200))
    assert state == {"interrupted": "impatient"}
    # The interrupted waiter never held the lock, so the holder's release
    # leaves the resource fully available.
    assert lock.available == 1


def test_interrupted_waiter_does_not_steal_later_grant():
    sim = Simulator()
    lock = Resource(sim, capacity=1)
    order = []

    def holder():
        yield lock.request()
        yield sim.timeout(100)
        lock.release()

    def waiter(name):
        try:
            yield lock.request()
        except Interrupt:
            order.append("%s-interrupted" % name)
            return
        order.append("%s-acquired" % name)
        lock.release()

    sim.process(holder())
    first = sim.process(waiter("first"))
    sim.process(waiter("second"))

    def supervisor():
        yield sim.timeout(10)
        first.interrupt()

    sim.process(supervisor())
    sim.run(sim.timeout(300))
    assert order == ["first-interrupted", "second-acquired"]


# -------------------------------------------------------------- determinism
def _traced_world(seed):
    """A seeded mix of fibers contending on a resource; returns the trace."""
    import random
    rng = random.Random(seed)
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    trace = []

    def worker(worker_id, delays):
        for hop, delay in enumerate(delays):
            yield sim.timeout(delay)
            yield resource.request()
            trace.append((sim.now, worker_id, hop))
            yield sim.timeout(delay // 2 + 1)
            resource.release()

    for worker_id in range(6):
        delays = [rng.randrange(1, 50) for _ in range(8)]
        sim.process(worker(worker_id, delays))
    sim.run()
    return trace


def test_same_seed_identical_event_order():
    assert _traced_world(1234) == _traced_world(1234)


def test_different_seed_different_event_order():
    assert _traced_world(1) != _traced_world(2)
