"""Simulation kernel: events, timeouts, fibers, conditions, clock."""

import pytest

from repro.sim.engine import (
    Event,
    Interrupt,
    SimulationError,
    Simulator,
    all_of,
    any_of,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0
    assert sim.now_s == 0.0
    assert sim.now_us == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.run(sim.timeout(1500))
    assert sim.now == 1500


def test_timeout_value():
    sim = Simulator()
    assert sim.run(sim.timeout(10, value="done")) == "done"


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_timeouts_fire_in_order():
    sim = Simulator()
    order = []
    for delay in (300, 100, 200):
        sim.timeout(delay).add_callback(lambda e, d=delay: order.append(d))
    sim.run()
    assert order == [100, 200, 300]


def test_same_time_events_fifo():
    sim = Simulator()
    order = []
    for tag in range(5):
        sim.timeout(50).add_callback(lambda e, t=tag: order.append(t))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_event_succeed_carries_value():
    sim = Simulator()
    event = sim.event()
    event.succeed(41)
    sim.run()
    assert event.processed and event.ok
    assert event.value == 41


def test_event_double_trigger_rejected():
    sim = Simulator()
    event = sim.event()
    event.succeed()
    with pytest.raises(SimulationError):
        event.succeed()
    with pytest.raises(SimulationError):
        event.fail(RuntimeError("x"))


def test_event_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_pending_event_value_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        _ = sim.event().value


def test_unhandled_failure_surfaces():
    sim = Simulator()
    sim.event().fail(ValueError("boom"))
    with pytest.raises(SimulationError):
        sim.run()


def test_defused_failure_is_silent():
    sim = Simulator()
    event = sim.event()
    event.defused = True
    event.fail(ValueError("boom"))
    sim.run()
    assert not event.ok


def test_process_receives_timeout_values():
    sim = Simulator()
    seen = []

    def fiber():
        value = yield sim.timeout(10, "a")
        seen.append(value)
        value = yield sim.timeout(10, "b")
        seen.append(value)

    sim.run(sim.process(fiber()))
    assert seen == ["a", "b"]
    assert sim.now == 20


def test_process_return_value():
    sim = Simulator()

    def fiber():
        yield sim.timeout(5)
        return 99

    assert sim.run(sim.process(fiber())) == 99


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def failing():
        yield sim.timeout(1)
        raise RuntimeError("inner")

    def waiter():
        try:
            yield sim.process(failing())
        except RuntimeError as exc:
            return str(exc)

    assert sim.run(sim.process(waiter())) == "inner"


def test_process_failed_event_thrown_in():
    sim = Simulator()
    event = sim.event()

    def fiber():
        try:
            yield event
        except ValueError:
            return "caught"

    proc = sim.process(fiber())
    event.fail(ValueError("x"))
    assert sim.run(proc) == "caught"


def test_process_must_yield_events():
    sim = Simulator()

    def bad():
        yield 42

    proc = sim.process(bad())
    proc.defused = True
    sim.run()
    assert isinstance(proc.exception, SimulationError)


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)


def test_interrupt_wakes_waiting_process():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(1_000_000)
        except Interrupt as interrupt:
            return interrupt.cause

    proc = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(10)
        proc.interrupt("wake up")

    sim.process(interrupter())
    assert sim.run(proc) == "wake up"
    assert sim.now < 1_000_000


def test_interrupt_before_first_resume_cancels():
    sim = Simulator()
    ran = []

    def body():
        ran.append("entered")
        yield sim.timeout(100)
        ran.append("finished")

    proc = sim.process(body())
    proc.interrupt("cancel")  # before the simulator ever ran
    sim.run()
    assert ran == []  # the body never executed
    assert proc.processed and not proc.ok
    assert isinstance(proc.exception, Interrupt)


def test_interrupt_finished_process_rejected():
    sim = Simulator()

    def quick():
        yield sim.timeout(1)

    proc = sim.process(quick())
    sim.run(proc)
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_stale_wakeup_after_interrupt_ignored():
    sim = Simulator()
    stages = []

    def sleeper():
        try:
            yield sim.timeout(100)
        except Interrupt:
            stages.append("interrupted")
        yield sim.timeout(500)
        stages.append("done")

    proc = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(10)
        proc.interrupt()

    sim.process(interrupter())
    sim.run(proc)
    # The original timeout at t=100 must not resume the fiber early.
    assert stages == ["interrupted", "done"]
    assert sim.now == 510


def test_all_of_collects_values():
    sim = Simulator()
    events = [sim.timeout(i * 10, value=i) for i in (3, 1, 2)]
    assert sim.run(all_of(sim, events)) == [3, 1, 2]


def test_all_of_with_already_processed_children():
    sim = Simulator()

    def quick(i):
        yield sim.timeout(i)
        return i

    procs = [sim.process(quick(i)) for i in (1, 2)]
    sim.run()  # both finish

    def waiter():
        values = yield all_of(sim, procs)
        return values

    assert sim.run(sim.process(waiter())) == [1, 2]


def test_all_of_empty():
    sim = Simulator()
    assert sim.run(all_of(sim, [])) == []


def test_all_of_fails_fast():
    sim = Simulator()
    bad = sim.event()
    slow = sim.timeout(1000)

    def waiter():
        try:
            yield all_of(sim, [bad, slow])
        except KeyError:
            return sim.now

    proc = sim.process(waiter())
    bad.fail(KeyError("k"))
    assert sim.run(proc) == 0


def test_any_of_first_wins():
    sim = Simulator()
    first = any_of(sim, [sim.timeout(50, "slow"), sim.timeout(5, "fast")])
    assert sim.run(first) == "fast"
    assert sim.now == 5


def test_any_of_preprocessed_child():
    sim = Simulator()
    done = sim.event()
    done.succeed("already")
    sim.run()
    result = any_of(sim, [done, sim.timeout(100)])
    assert sim.run(result) == "already"


def test_condition_rejects_foreign_events():
    sim_a, sim_b = Simulator(), Simulator()
    with pytest.raises(SimulationError):
        all_of(sim_a, [sim_b.timeout(1)])


def test_run_until_time():
    sim = Simulator()
    fired = []
    sim.timeout(100).add_callback(lambda e: fired.append(100))
    sim.timeout(300).add_callback(lambda e: fired.append(300))
    sim.run(until=200)
    assert fired == [100]
    assert sim.now == 200
    sim.run()
    assert fired == [100, 300]


def test_run_until_past_rejected():
    sim = Simulator()
    sim.run(sim.timeout(100))
    with pytest.raises(ValueError):
        sim.run(until=50)


def test_run_until_untriggered_event_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.run(sim.event())


def test_peek():
    sim = Simulator()
    assert sim.peek() is None
    sim.timeout(42)
    assert sim.peek() == 42


def test_nested_yield_from():
    sim = Simulator()

    def inner():
        yield sim.timeout(10)
        return "inner-value"

    def outer():
        value = yield from inner()
        yield sim.timeout(5)
        return value + "!"

    assert sim.run(sim.process(outer())) == "inner-value!"
    assert sim.now == 15


def test_many_processes_interleave():
    sim = Simulator()
    log = []

    def worker(name, period):
        for _ in range(3):
            yield sim.timeout(period)
            log.append((name, sim.now))

    sim.process(worker("a", 10))
    sim.process(worker("b", 15))
    sim.run()
    # At t=30 both fire; b's timeout was scheduled first (at t=15), so it
    # wakes first — FIFO among same-time events.
    assert log == [("a", 10), ("b", 15), ("a", 20), ("b", 30), ("a", 30), ("b", 45)]
