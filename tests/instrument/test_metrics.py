"""MetricsRegistry, metric kinds, and the legacy-stats registry migration."""

import pytest

from repro.host.platform import System
from repro.instrument.metrics import (
    Counter, Histogram, MetricsRegistry, registry_counter,
)
from repro.sim.units import MIB
from repro.ssd.cache import CacheStats
from repro.ssd.controller import ReadStats


# ------------------------------------------------------------------- registry
def test_get_or_create_is_idempotent():
    registry = MetricsRegistry()
    counter = registry.counter("ssd.io.reads")
    assert registry.counter("ssd.io.reads") is counter
    counter.inc(3)
    assert registry.counter("ssd.io.reads").value == 3


def test_kind_conflict_rejected():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ValueError):
        registry.gauge("x")


def test_snapshot_sorted_and_typed():
    registry = MetricsRegistry()
    registry.gauge("b.gauge").set(2.5)
    registry.counter("a.count").inc()
    snap = registry.snapshot()
    assert list(snap) == ["a.count", "b.gauge"]
    assert snap["a.count"] == {"type": "counter", "value": 1}
    assert snap["b.gauge"] == {"type": "gauge", "value": 2.5}


def test_to_json_deterministic_and_merges_extra():
    registry = MetricsRegistry()
    registry.counter("n").inc(7)
    first = registry.to_json(extra={"workload": "w"})
    second = registry.to_json(extra={"workload": "w"})
    assert first == second
    assert '"workload": "w"' in first
    assert first.endswith("\n")


# ------------------------------------------------------------------ histogram
def test_histogram_exact_quantiles():
    hist = Histogram("lat")
    for value in [10.0, 20.0, 30.0, 40.0]:
        hist.observe(value)
    assert hist.quantile(0.0) == 10.0
    assert hist.quantile(1.0) == 40.0
    assert hist.quantile(0.5) == 25.0  # linear interpolation between 20, 30
    snap = hist.snapshot()
    assert snap["count"] == 4 and snap["mean"] == 25.0


def test_histogram_empty_and_bad_quantile():
    hist = Histogram("lat")
    assert hist.quantile(0.5) == 0.0
    assert hist.snapshot() == {"type": "histogram", "count": 0}
    with pytest.raises(ValueError):
        hist.quantile(1.5)


# -------------------------------------------------------- legacy stats shims
def test_registry_counter_property_shim():
    class Legacy:
        _FIELDS = ("hits",)
        hits = registry_counter("hits")

        def __init__(self, registry):
            self._counters = {f: registry.counter("t.%s" % f)
                              for f in self._FIELDS}

    registry = MetricsRegistry()
    legacy = Legacy(registry)
    legacy.hits += 1
    legacy.hits += 1
    assert legacy.hits == 2
    assert registry.counter("t.hits").value == 2


def test_cache_stats_register_under_prefix():
    registry = MetricsRegistry()
    stats = CacheStats(registry=registry, prefix="ssd0.cache")
    stats.hits += 3
    stats.misses += 1
    assert registry.counter("ssd0.cache.hits").value == 3
    assert stats.lookups == 4
    assert stats.hit_rate == 0.75


def test_read_stats_register_under_prefix():
    registry = MetricsRegistry()
    stats = ReadStats(registry=registry, prefix="ssd0.io")
    stats.read_commands += 2
    stats.logical_pages_read += 8
    assert registry.counter("ssd0.io.read_commands").value == 2
    assert stats.bytes_read == 8 * 4096  # derived property still works


def test_stats_standalone_without_registry():
    """No registry ⇒ private counters; the legacy API is unchanged."""
    stats = CacheStats()
    stats.hits += 1
    assert stats.lookups == 1


def test_system_wires_device_stats_into_registry():
    system = System()
    system.fs.install_synthetic("/d", 16 * MIB)
    handle = system.open_host("/d")

    def program():
        yield from handle.read_timing_only(0, 64 * 1024)

    system.run_fiber(program())
    snap = system.metrics.snapshot()
    assert snap["ssd0.io.read_commands"]["value"] > 0
    assert "ssd0.cache.hits" in snap
    # Controller stats and the registry view agree.
    assert (system.devices[0].controller.stats.read_commands
            == snap["ssd0.io.read_commands"]["value"])


def test_utilization_monitor_registers_series(system):
    from repro.instrument.utilization import UtilizationMonitor
    from repro.sim.units import s_to_ns

    monitor = UtilizationMonitor.for_system(system, interval_s=0.001)
    monitor.start()
    system.sim.run(until=s_to_ns(0.005))
    monitor.stop()
    snap = system.metrics.snapshot()
    assert snap["util.host-cores"]["type"] == "series"
    assert snap["util.host-cores"]["count"] > 0
    # Legacy accessors still read the very same points.
    assert monitor.series["host-cores"] is system.metrics.series(
        "util.host-cores").points
