"""Span tracer and utilization monitor."""

import pytest

from repro.instrument import SpanTracer, UtilizationMonitor
from repro.sim.engine import Simulator
from repro.sim.units import MIB, s_to_ns


# ------------------------------------------------------------------- spans
def test_begin_end_records_duration():
    sim = Simulator()
    tracer = SpanTracer(sim)

    def fiber():
        tracer.begin("io", "read")
        yield sim.timeout(1000)
        tracer.end("io", "read")

    sim.run(sim.process(fiber()))
    (span,) = tracer.closed_spans()
    assert span.duration_ns == 1000
    assert tracer.total_ns("io") == 1000


def test_concurrent_same_named_spans():
    """Overlapping commands on one queue are the normal case, not an error."""
    sim = Simulator()
    tracer = SpanTracer(sim)

    def fiber():
        first = tracer.begin("t", "x")
        yield sim.timeout(10)
        second = tracer.begin("t", "x")
        yield sim.timeout(10)
        # Bare end() pops LIFO: closes `second`, not `first`.
        assert tracer.end("t", "x") is second
        yield sim.timeout(10)
        tracer.end("t", "x")
        assert first.end_ns == 30

    sim.run(sim.process(fiber()))
    spans = tracer.closed_spans("t")
    assert len(spans) == 2
    assert len({span.span_id for span in spans}) == 2
    assert sorted(span.duration_ns for span in spans) == [10, 30]


def test_end_specific_span():
    sim = Simulator()
    tracer = SpanTracer(sim)
    first = tracer.begin("t", "x")
    second = tracer.begin("t", "x")
    assert tracer.end("t", "x", span=first) is first
    with pytest.raises(ValueError):
        tracer.end("t", "x", span=first)  # already closed
    tracer.end("t", "x", span=second)


def test_concurrent_span_wrappers_close_their_own():
    sim = Simulator()
    tracer = SpanTracer(sim)

    def sleeper(duration_ns):
        yield sim.timeout(duration_ns)

    fibers = [
        sim.process(tracer.span("core", "work", sleeper(d)))
        for d in (300, 100, 200)
    ]
    for fiber in fibers:
        sim.run(fiber)
    # Each wrapper closed its own span despite the shared (track, name).
    assert sorted(s.duration_ns for s in tracer.closed_spans("core")) == \
        [100, 200, 300]


def test_end_without_begin_rejected():
    tracer = SpanTracer(Simulator())
    with pytest.raises(ValueError):
        tracer.end("t", "x")


def test_open_span_duration_unavailable():
    tracer = SpanTracer(Simulator())
    span = tracer.begin("t", "x")
    with pytest.raises(ValueError):
        _ = span.duration_ns


def test_span_wrapper_closes_on_exception():
    sim = Simulator()
    tracer = SpanTracer(sim)

    def failing():
        yield sim.timeout(5)
        raise RuntimeError("x")

    def outer():
        try:
            yield from tracer.span("t", "wrapped", failing())
        except RuntimeError:
            return "caught"

    assert sim.run(sim.process(outer())) == "caught"
    assert tracer.closed_spans()[0].duration_ns == 5


def test_span_wrapper_returns_value():
    sim = Simulator()
    tracer = SpanTracer(sim)

    def inner():
        yield sim.timeout(1)
        return 42

    def outer():
        value = yield from tracer.span("t", "v", inner())
        return value

    assert sim.run(sim.process(outer())) == 42


def test_gantt_render():
    sim = Simulator()
    tracer = SpanTracer(sim)

    def fiber():
        tracer.begin("alpha", "one")
        yield sim.timeout(500)
        tracer.end("alpha", "one")
        tracer.begin("beta", "two")
        yield sim.timeout(500)
        tracer.end("beta", "two")

    sim.run(sim.process(fiber()))
    chart = tracer.gantt(width=20)
    lines = chart.splitlines()
    assert lines[0].startswith("alpha")
    assert "#" in lines[0] and "#" in lines[1]
    # alpha occupies the first half, beta the second.
    assert lines[0].index("#") < lines[1].index("#")


def test_gantt_empty():
    assert SpanTracer(Simulator()).gantt() == "(no spans)"


def test_gantt_zero_duration_marker():
    sim = Simulator()
    tracer = SpanTracer(sim)

    def fiber():
        span = tracer.begin("t", "instant")
        tracer.end("t", "instant", span=span)  # zero duration at t=0
        tracer.begin("t", "work")
        yield sim.timeout(1000)
        tracer.end("t", "work")

    sim.run(sim.process(fiber()))
    row = tracer.gantt(width=20).splitlines()[0]
    # The instant coincides with the start of real work; '#' wins the cell.
    assert "|##" in row and row.count("|") == 2  # only the frame bars


def test_gantt_lone_zero_duration_span():
    sim = Simulator()
    tracer = SpanTracer(sim)

    def fiber():
        yield sim.timeout(500)
        span = tracer.begin("t", "mark")
        tracer.end("t", "mark", span=span)
        yield sim.timeout(500)
        tracer.begin("t", "tail")
        yield sim.timeout(100)
        tracer.end("t", "tail")

    sim.run(sim.process(fiber()))
    row = tracer.gantt(width=21).splitlines()[0]
    cells = row[row.index("|") + 1:row.rindex("|")]
    assert "|" in cells  # the instant renders as a marker, not a crash
    assert "#" in cells


# -------------------------------------------------------------- utilization
def test_monitor_tracks_busy_resource(system):
    monitor = UtilizationMonitor(system.sim, interval_s=0.001)
    monitor.watch("host", [system.cpu.cores])
    monitor.start()

    def burn():
        yield from system.cpu.occupy(20_000.0, memory_bound=False)  # 20 ms

    system.run_fiber(burn())
    system.sim.run(until=system.sim.now + s_to_ns(0.01))
    monitor.stop()
    assert monitor.peak("host") > 0.9 / system.cpu.cores.capacity
    assert monitor.mean("host") > 0.0


def test_monitor_for_system_groups(system):
    monitor = UtilizationMonitor.for_system(system, interval_s=0.001)
    assert set(monitor.series) == {"host-cores", "ssd-channels", "device-cores", "pcie"}


def test_monitor_sees_ssd_activity(system):
    system.fs.install_synthetic("/d", 64 * MIB)
    handle = system.open_internal("/d")
    monitor = UtilizationMonitor.for_system(system, interval_s=0.0005)
    monitor.start()

    def stream():
        for i in range(8):
            yield from handle.read_timing_only(i * 4 * MIB, 4 * MIB)

    system.run_fiber(stream())
    monitor.stop()
    assert monitor.peak("ssd-channels") > 0.5
    assert monitor.peak("pcie") == 0.0  # internal reads never cross PCIe


def test_monitor_report_and_sparkline(system):
    monitor = UtilizationMonitor(system.sim, interval_s=0.001)
    monitor.watch("host", [system.cpu.cores])
    monitor.start()
    system.sim.run(until=s_to_ns(0.02))
    monitor.stop()
    report = monitor.report(width=10)
    assert "host" in report and "mean" in report
    assert len(monitor.sparkline("host", width=10)) == 10


def test_monitor_cannot_watch_while_running(system):
    monitor = UtilizationMonitor(system.sim)
    monitor.watch("a", [system.cpu.cores])
    monitor.start()
    with pytest.raises(RuntimeError):
        monitor.watch("b", [system.cpu.cores])
    monitor.stop()
