"""Latency-breakdown report, cross-checked against the Table III goldens."""

import csv
import os

import pytest

from repro.host.platform import System
from repro.instrument.breakdown import (
    COMPONENTS, CommandBreakdown, read_latency_breakdown,
)
from repro.instrument.events import EventBus, TraceEvent
from repro.sim.engine import Simulator
from repro.sim.units import MIB

GOLDEN = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__)))), "benchmarks", "results",
    "table3_read_latency.csv")


def _golden_us():
    with open(GOLDEN) as handle:
        rows = {row["config"]: float(row["measured"])
                for row in csv.DictReader(handle)}
    return rows["Conv"], rows["Biscuit"]


def _traced_read_run(samples=32):
    """The Table III experiment shape with the event bus attached."""
    sim = Simulator()
    bus = EventBus(sim)
    system = System(sim=sim)
    system.fs.install_synthetic("/bench/latency.dat", 64 * MIB)

    def measure(handle):
        def program():
            for index in range(samples):
                yield from handle.read_timing_only(index * 4096, 4096)
        system.run_fiber(program())

    measure(system.open_host("/bench/latency.dat"))
    measure(system.open_internal("/bench/latency.dat"))
    return bus


# ------------------------------------------------------------ golden checks
def test_breakdown_totals_match_table3_goldens():
    conv_us, biscuit_us = _golden_us()
    report = read_latency_breakdown(_traced_read_run().events)
    assert report.host.count == 32
    assert report.internal.count == 32
    assert report.host.mean_total_us == pytest.approx(conv_us, rel=0.01)
    assert report.internal.mean_total_us == pytest.approx(biscuit_us, rel=0.01)


def test_breakdown_components_sum_to_total_for_serial_reads():
    """Serial 4 KiB reads have disjoint spans: busy sums are exact."""
    report = read_latency_breakdown(_traced_read_run(samples=8).events)
    for aggregate in (report.host, report.internal):
        for command in aggregate.commands:
            assert sum(command.components.values()) == command.dur_ns
            assert command.components["other"] >= 0


def test_host_path_pays_driver_and_transfer_internal_does_not():
    report = read_latency_breakdown(_traced_read_run(samples=8).events)
    host, internal = report.host.composition(), report.internal.composition()
    assert host["driver"] > 0 and host["transfer"] > 0
    assert internal["driver"] == 0 and internal["transfer"] == 0
    # Both paths touch the same firmware and media.
    assert internal["firmware"] == pytest.approx(host["firmware"], rel=0.01)
    assert internal["nand"] == pytest.approx(host["nand"], rel=0.01)


def test_report_format_lists_both_paths():
    text = read_latency_breakdown(_traced_read_run(samples=4).events).format()
    lines = text.splitlines()
    assert lines[0].split()[:3] == ["path", "cmds", "total"]
    assert any(line.lstrip().startswith("host") for line in lines)
    assert any(line.lstrip().startswith("internal") for line in lines)


def test_tracing_toggle_leaves_timing_goldens_intact():
    """Acceptance: event bus disabled ⇒ no change to Table III numbers."""
    def mean_read_us(sim=None):
        system = System(sim=sim) if sim is not None else System()
        system.fs.install_synthetic("/g", 64 * MIB)
        handle = system.open_host("/g")

        def program():
            total_ns = 0
            for index in range(16):
                start_ns = system.sim.now
                yield from handle.read_timing_only(index * 4096, 4096)
                total_ns += system.sim.now - start_ns
            return total_ns / 16 / 1e3

        return system.run_fiber(program())

    untraced_us = mean_read_us()
    sim = Simulator()
    EventBus(sim)
    assert mean_read_us(sim) == untraced_us
    conv_us, _ = _golden_us()
    assert untraced_us == pytest.approx(conv_us, rel=0.01)


# ------------------------------------------------------- synthetic envelopes
def test_internal_envelope_excludes_ctrl_spans_inside_host_commands():
    events = [
        TraceEvent(0, 100, "nvme", "read", "host/io0", None),
        TraceEvent(10, 50, "ctrl", "read", "ssd0/io", None),   # contained
        TraceEvent(200, 50, "ctrl", "read", "ssd0/io", None),  # standalone
    ]
    report = read_latency_breakdown(events)
    assert report.host.count == 1
    assert report.internal.count == 1
    assert report.internal.commands[0].start_ns == 200


def test_clipping_charges_only_the_overlap():
    events = [
        TraceEvent(0, 100, "nvme", "read", "host/io0", None),
        # NAND span hangs 40 ns past the envelope: only 60 ns counted.
        TraceEvent(40, 100, "nand", "read", "ssd0/ch0", None),
    ]
    (command,) = read_latency_breakdown(events).host.commands
    assert command.components["nand"] == 60


def test_fabric_hops_not_double_counted_as_transfer():
    events = [
        TraceEvent(0, 100, "nvme", "read", "host/io0", None),
        TraceEvent(10, 20, "xfer", "d2h", "ssd0/pcie", None),
        TraceEvent(10, 20, "xfer", "fabric", "fabric/link", None),
    ]
    (command,) = read_latency_breakdown(events).host.commands
    assert command.components["transfer"] == 20


def test_command_breakdown_residual():
    command = CommandBreakdown("host", 0, 100)
    command.components["nand"] = 70
    command.components["driver"] = 10
    command.finalize()
    assert command.components["other"] == 20
    assert tuple(command.components) == COMPONENTS
