"""Trace-determinism matrix (fast path x tracing, 4 arms per experiment).

Tracing is pure observation and the fused NAND fast path de-gates itself
with bit-identical timing when a bus is attached, so the golden fig7 /
table3 experiments must produce *exactly* equal numbers in all four arms
of ``sim_fast_path`` on/off x tracing on/off — and the two traced arms
must render byte-identical Chrome traces.
"""

import pytest

from repro.bench.experiments import (
    exp_fig7_read_bandwidth,
    exp_table3_read_latency,
)
from repro.instrument.events import EventBus
from repro.instrument.perfetto import render_chrome_trace
from repro.sim.engine import Simulator
from repro.sim.units import KIB, MIB
from repro.ssd.config import SSDConfig

MATRIX = [(fast, traced)
          for fast in (True, False) for traced in (True, False)]


def _table3(sim, ssd_config):
    return exp_table3_read_latency(samples=8, sim=sim, ssd_config=ssd_config)


def _fig7(sim, ssd_config):
    return exp_fig7_read_bandwidth(sizes=[64 * KIB], sweep_bytes=32 * MIB,
                                   sim=sim, ssd_config=ssd_config)


def _run_arm(experiment, fast_path, traced):
    config = SSDConfig(sim_fast_path=fast_path)
    if not traced:
        return experiment(sim=None, ssd_config=config), None
    # The bus must attach before the System wires its devices so every
    # layer registers its trace scope.
    sim = Simulator()
    bus = EventBus(sim)
    result = experiment(sim=sim, ssd_config=config)
    return result, render_chrome_trace(bus.events)


@pytest.mark.parametrize("experiment", [_table3, _fig7],
                         ids=["table3", "fig7"])
def test_four_way_matrix(experiment):
    metrics = {}
    traces = {}
    for fast_path, traced in MATRIX:
        result, trace = _run_arm(experiment, fast_path, traced)
        metrics[(fast_path, traced)] = result.metrics
        if trace is not None:
            traces[fast_path] = trace

    baseline = metrics[(True, False)]
    assert baseline, "experiment produced no metrics"
    for arm, observed in metrics.items():
        assert observed == baseline, (
            "fast_path=%s traced=%s drifted from the fused/untraced arm"
            % arm)

    # Both traced arms step per-op (fusion de-gated), so the rendered
    # Chrome traces must be byte-identical — and non-trivial.
    assert traces[True] == traces[False]
    assert traces[True].count('"ph":"X"') > 10
