"""``python -m repro.instrument``: exit codes, artifacts, byte determinism."""

import json
import os
import subprocess
import sys

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__)))), "src")


def _run(args, hashseed="0"):
    env = dict(os.environ, PYTHONPATH=SRC, PYTHONHASHSEED=hashseed)
    return subprocess.run(
        [sys.executable, "-m", "repro.instrument"] + args,
        capture_output=True, text=True, env=env,
    )


def test_list_workloads():
    proc = _run(["--list"])
    assert proc.returncode == 0
    names = [line.split()[0] for line in proc.stdout.splitlines()]
    assert names == sorted(names)
    assert "string_search" in names and "read_latency" in names


def test_workload_required():
    proc = _run([])
    assert proc.returncode == 2
    assert "--workload is required" in proc.stderr


def test_read_latency_artifacts_and_determinism(tmp_path):
    """Trace and metrics bytes are identical across PYTHONHASHSEED values."""
    outputs = {}
    for seed in ("1", "999"):
        trace = tmp_path / ("trace-%s.json" % seed)
        metrics = tmp_path / ("metrics-%s.json" % seed)
        proc = _run(["--workload", "read_latency", "--trace", str(trace),
                     "--metrics", str(metrics), "--breakdown"],
                    hashseed=seed)
        assert proc.returncode == 0, proc.stderr
        # Drop the "written to <path>" lines: the paths embed the seed.
        report = "\n".join(line for line in proc.stdout.splitlines()
                           if " written to " not in line)
        outputs[seed] = (trace.read_bytes(), metrics.read_bytes(), report)
    assert outputs["1"] == outputs["999"]

    trace_bytes, metrics_bytes, report = outputs["1"]
    # The trace is loadable Chrome trace-event JSON with named processes.
    trace = json.loads(trace_bytes)
    phases = {event["ph"] for event in trace["traceEvents"]}
    assert {"X", "M"} <= phases
    process_names = {event["args"]["name"]
                     for event in trace["traceEvents"]
                     if event["ph"] == "M" and event["name"] == "process_name"}
    assert {"host", "ssd0"} <= process_names
    # The metrics snapshot carries the registry plus run header fields.
    metrics = json.loads(metrics_bytes)
    assert metrics["workload"] == "read_latency"
    # Metadata ("M") and per-query flow arrows ("s"/"t"/"f") are synthetic
    # exporter records, not bus events.
    synthetic = sum(1 for event in trace["traceEvents"]
                    if event["ph"] in ("M", "s", "t", "f"))
    assert metrics["events"] == len(trace["traceEvents"]) - synthetic
    assert "ssd0.io.read_commands" in metrics["metrics"]
    # The breakdown report reproduces the Table III composition.
    assert "path" in report and "internal" in report
    values = dict(
        part.split("=") for line in report.splitlines()
        if line.startswith("read_latency ") for part in line.split()[1:]
    )
    assert abs(float(values["conv_read_us"]) - 90.0) < 0.9  # Table III, 1%
    assert abs(float(values["biscuit_read_us"]) - 75.9) < 0.76
