"""Causal tracing: context propagation, DAG assembly, critical paths, and
the exact (ns-integer) tail-latency attribution."""

import pytest

from repro.host.platform import System
from repro.instrument.causal import (
    COMPONENTS,
    assemble_dag,
    attribute,
    attribute_query,
    critical_path,
    group_queries,
)
from repro.instrument.events import EventBus, TraceContext, TraceEvent
from repro.sim.engine import Simulator
from repro.sim.units import MIB
from repro.ssd.config import SSDConfig


def make_bus():
    sim = Simulator()
    return sim, EventBus(sim)


def span(ts, dur, cat, name, track="host/x", q="q1", **extra):
    args = {"q": q}
    args.update(extra)
    return TraceEvent(ts, dur, cat, name, track, args)


# --------------------------------------------------------- context plumbing
class TestTraceContext:
    def test_root_strips_child_suffixes(self):
        ctx = TraceContext("storm/q3")
        child = ctx.child("hedge0")
        assert child.qid == "storm/q3+hedge0"
        assert child.root == "storm/q3"
        assert child.child("retry1").root == "storm/q3"

    def test_scope_tags_emissions(self):
        _sim, bus = make_bus()
        with bus.scope("q1", "tenantA"):
            bus.instant("t", "point", "host/x")
            bus.complete("t", "work", "host/x", 0)
        bus.instant("t", "untagged", "host/x")
        assert bus.events[0].args == {"q": "q1", "tn": "tenantA"}
        assert bus.events[1].args["q"] == "q1"
        assert bus.events[2].args is None

    def test_scopes_nest_and_restore(self):
        _sim, bus = make_bus()
        with bus.scope("outer"):
            with bus.scope("inner"):
                bus.instant("t", "a", "host/x")
            bus.instant("t", "b", "host/x")
        assert bus.events[0].args["q"] == "inner"
        assert bus.events[1].args["q"] == "outer"
        assert bus.ctx is None

    def test_child_scope_extends_qid(self):
        _sim, bus = make_bus()
        with bus.scope("q1", "tA"):
            with bus.child_scope("hedge0") as child:
                assert child.qid == "q1+hedge0"
                bus.instant("t", "leg", "host/x")
        assert bus.events[0].args == {"q": "q1+hedge0", "tn": "tA"}

    def test_child_scope_is_noop_without_context(self):
        _sim, bus = make_bus()
        with bus.child_scope("orphan") as child:
            assert child is None
            bus.instant("t", "x", "host/x")
        assert bus.events[0].args is None

    def test_scope_survives_yields_per_fiber(self):
        """Two interleaved fibers each keep their own context across
        resumes — the engine restores the fiber's ctx on every step."""
        sim, bus = make_bus()

        def fiber(qid, delay):
            with bus.scope(qid):
                yield sim.timeout(delay)
                bus.instant("t", "after", "host/x")
                yield sim.timeout(delay)
                bus.instant("t", "later", "host/x")

        sim.process(fiber("qA", 100), name="a")
        sim.process(fiber("qB", 30), name="b")
        sim.run()
        tags = sorted(event.args["q"] for event in bus.events)
        assert tags == ["qA", "qA", "qB", "qB"]

    def test_spawned_fiber_inherits_spawning_context(self):
        sim, bus = make_bus()

        def child():
            yield sim.timeout(50)
            bus.instant("t", "child", "host/x")

        def parent():
            with bus.scope("q1"):
                sim.process(child(), name="child")
                yield sim.timeout(1)
            yield sim.timeout(100)
            bus.instant("t", "parent-after", "host/x")

        sim.process(parent(), name="parent")
        sim.run()
        by_name = {event.name: event for event in bus.events}
        # The child keeps the context it was spawned under even after the
        # parent's scope closed; the parent's later emission is untagged.
        assert by_name["child"].args["q"] == "q1"
        assert by_name["parent-after"].args is None


# -------------------------------------------------------------- query groups
class TestGroupQueries:
    def test_child_suffixes_group_under_root(self):
        events = [
            span(0, 10, "nand", "read", q="q1"),
            span(5, 10, "resil", "hedge-wait", q="q1+hedge0"),
            span(20, 10, "nand", "read", q="q2"),
        ]
        traces = group_queries(events)
        assert [t.qid for t in traces] == ["q1", "q2"]
        assert len(traces[0].events) == 2
        assert traces[0].start_ns == 0 and traces[0].end_ns == 15
        assert traces[0].latency_ns == 15

    def test_untagged_events_ignored(self):
        events = [TraceEvent(0, 10, "nand", "read", "ssd0/ch0", None),
                  span(0, 5, "fw", "dispatch")]
        traces = group_queries(events)
        assert len(traces) == 1
        assert len(traces[0].events) == 1


# --------------------------------------------------------------- attribution
class TestAttribution:
    def test_conservation_priority_and_residual(self):
        events = [
            span(0, 100, "nand", "read"),
            span(50, 30, "nand", "read-failed"),  # ecc outranks nand busy
            span(100, 40, "xfer", "d2h"),
            span(160, 20, "fw", "dispatch"),      # 140..160 is uncovered
        ]
        totals = attribute_query(group_queries(events)[0])
        assert totals["end_to_end"] == 180
        assert totals["ecc_retry"] == 30
        assert totals["nand_busy"] == 70
        assert totals["transfer"] == 40
        assert totals["firmware"] == 20
        assert totals["other"] == 20
        assert sum(totals[name] for name in COMPONENTS) == 180

    def test_envelope_spans_fall_to_other(self):
        events = [
            span(0, 100, "ctrl", "read"),   # envelope: never a source
            span(10, 20, "nand", "read"),
        ]
        totals = attribute_query(group_queries(events)[0])
        assert totals["nand_busy"] == 20
        assert totals["other"] == 80

    def test_fabric_hops_not_double_charged(self):
        events = [
            span(0, 50, "xfer", "fabric"),
            span(0, 30, "xfer", "d2h"),
        ]
        totals = attribute_query(group_queries(events)[0])
        assert totals["transfer"] == 30
        assert totals["other"] == 20

    def test_waits_rank_below_concurrent_work(self):
        events = [
            span(0, 100, "resil", "hedge-wait"),
            span(20, 30, "nand", "read"),
        ]
        totals = attribute_query(group_queries(events)[0])
        assert totals["nand_busy"] == 30
        assert totals["hedge_wait"] == 70

    def test_percentile_rows_are_exact_order_statistics(self):
        events = []
        for index in range(10):
            events.append(span(index * 1000, (index + 1) * 100,
                               "nand", "read", q="q%d" % index))
        report = attribute(events)
        assert report.percentiles["p50"]["end_to_end"] == 500
        assert report.percentiles["p99"]["end_to_end"] == 1000
        assert report.mean["end_to_end"] == 550

    def test_render_and_json_stable(self):
        events = [span(0, 100, "nand", "read", tn="tA")]
        report = attribute(events)
        assert report.to_json() == attribute(events).to_json()
        rendered = report.render()
        assert "q1" in rendered and "percentile decomposition" in rendered


# -------------------------------------------------------------- critical path
class TestCriticalPath:
    def test_serial_chain(self):
        events = [
            span(0, 10, "driver", "submit"),
            span(10, 50, "nand", "read", track="ssd0/ch0"),
            span(60, 20, "xfer", "d2h"),
            span(80, 5, "driver", "complete"),
        ]
        path = critical_path(group_queries(events)[0])
        assert [(e.cat, e.name) for e in path] == [
            ("driver", "submit"), ("nand", "read"),
            ("xfer", "d2h"), ("driver", "complete")]

    def test_last_finisher_wins_overlap(self):
        events = [
            span(0, 40, "nand", "read", track="ssd0/ch0"),
            span(0, 90, "nand", "read", track="ssd0/ch1"),
        ]
        path = critical_path(group_queries(events)[0])
        assert len(path) == 1
        assert path[0].track == "ssd0/ch1"

    def test_gap_jumps_to_latest_earlier_end(self):
        events = [
            span(0, 10, "fw", "dispatch"),
            span(30, 10, "xfer", "d2h"),
        ]
        path = critical_path(group_queries(events)[0])
        assert [(e.cat, e.name) for e in path] == [
            ("fw", "dispatch"), ("xfer", "d2h")]

    def test_envelopes_never_on_path(self):
        events = [
            span(0, 100, "ctrl", "read"),
            span(0, 100, "nand", "read", track="ssd0/ch0"),
        ]
        path = critical_path(group_queries(events)[0])
        assert [(e.cat, e.name) for e in path] == [("nand", "read")]


# ------------------------------------------------------------------ DAG
class TestAssembleDag:
    def test_containment_spawn_and_root(self):
        events = [
            span(0, 100, "ctrl", "read", track="ssd0/ctrl"),
            span(10, 20, "fw", "dispatch", track="ssd0/ctrl"),
            span(40, 10, "resil", "hedge-wait", track="host/resil",
                 q="q1+hedge0"),
            span(50, 10, "driver", "submit", track="host/io"),
        ]
        nodes = assemble_dag(group_queries(events)[0])
        assert nodes[0].kind == "root" and nodes[0].parent is None
        assert nodes[1].kind == "contain" and nodes[1].parent == 0
        # The child scope's first span spawns off the last parent-scope span.
        assert nodes[2].kind == "spawn" and nodes[2].parent == 1
        # Same scope, different track, no cover: a root.
        assert nodes[3].kind == "root"

    def test_innermost_cover_wins(self):
        events = [
            span(0, 100, "ctrl", "read", track="ssd0/ctrl"),
            span(10, 80, "fw", "scan", track="ssd0/ctrl"),
            span(20, 10, "fw", "dispatch", track="ssd0/ctrl"),
        ]
        nodes = assemble_dag(group_queries(events)[0])
        assert nodes[2].parent == 1


# ------------------------------------------------------------- whole systems
def _traced_system(**kwargs):
    sim = Simulator()
    bus = EventBus(sim)
    return System(sim=sim, **kwargs), bus


class TestEndToEnd:
    def test_table3_conservation_is_exact(self):
        from repro.instrument.__main__ import _run_read_latency
        system, bus = _traced_system()
        _run_read_latency(system, samples=4)
        report = attribute(bus.events)
        assert len(report.queries) == 8  # 4 conv + 4 internal
        for row in report.queries:
            assert sum(row[name] for name in COMPONENTS) == row["end_to_end"]
            assert row["nand_busy"] > 0
        conv = [r for r in report.queries if r["qid"].startswith("table3/conv")]
        internal = [r for r in report.queries
                    if r["qid"].startswith("table3/int")]
        assert len(conv) == len(internal) == 4
        # The host path pays driver + transfer; the internal path does not.
        assert all(r["driver"] > 0 and r["transfer"] > 0 for r in conv)
        assert all(r["driver"] == 0 for r in internal)

    def test_table3_critical_path_is_contiguous(self):
        from repro.instrument.__main__ import _run_read_latency
        system, bus = _traced_system()
        _run_read_latency(system, samples=2)
        trace = group_queries(bus.events)[0]
        path = critical_path(trace)
        assert path, "empty critical path"
        assert path[0].ts_ns == trace.start_ns
        assert path[-1].end_ns == trace.end_ns
        for step, following in zip(path, path[1:]):
            assert following.end_ns >= step.end_ns

    def test_serve_mix_conservation_and_tenants(self):
        from repro.serve.mixes import run_mix
        result = run_mix("smoke", trace=True)
        assert result.bus is not None
        report = attribute(result.bus.events)
        assert report.queries
        for row in report.queries:
            assert sum(row[name] for name in COMPONENTS) == row["end_to_end"]
        tenants = [row["tenant"] for row in report.tenants]
        assert tenants == sorted(tenants)
        assert all(tenants), "serve queries must carry tenant identity"

    def test_attribution_deterministic_across_runs(self):
        from repro.instrument.__main__ import _run_read_latency

        def one_run():
            system, bus = _traced_system()
            _run_read_latency(system, samples=4)
            return attribute(bus.events).to_json()

        assert one_run() == one_run()

    def test_tracing_never_changes_timing(self):
        from repro.instrument.__main__ import _run_read_latency
        traced_system, _bus = _traced_system()
        traced = _run_read_latency(traced_system, samples=4)
        untraced = _run_read_latency(System(), samples=4)
        assert traced == untraced


# ------------------------------------------------------- registry surfacing
class TestRegistryCounters:
    def test_resilience_counters_live_in_system_registry(self):
        from repro.resilience import (
            HedgePolicy, RecoveryTracker, ResilientScanDriver, RetryPolicy,
        )
        system = System(num_ssds=2)
        driver = ResilientScanDriver(
            system, policy=RetryPolicy(), hedge=HedgePolicy(),
            recovery=RecoveryTracker(system.sim))
        driver.stats.retries += 1
        driver.hedge.hedges_fired += 1
        driver.recovery.note_fault(0)
        registry = system.metrics
        assert registry.counter("resilience.retries").value == 1
        assert registry.counter("resilience.hedge.hedges_fired").value == 1
        assert registry.counter("resilience.recovery.faults_noted").value == 1

    def test_race_counters_live_in_system_registry(self):
        system = System(ssd_config=SSDConfig(race_check=True))
        assert system.sim.race is not None
        system.fs.install_synthetic("/t.dat", 1 * MIB)
        handle = system.open_host("/t.dat")

        def program():
            yield from handle.read_timing_only(0, 4096)

        system.run_fiber(program())
        assert system.metrics.counter("race.batches").value > 0
        assert system.metrics.counter("race.entries").value > 0
