"""EventBus: attachment, emission, selection, and the disabled fast path."""

import pytest

from repro.host.platform import System
from repro.instrument.events import EventBus, TraceEvent
from repro.sim.engine import Simulator
from repro.sim.units import MIB


# ------------------------------------------------------------------ lifecycle
def test_bus_attaches_to_simulator():
    sim = Simulator()
    assert sim.trace is None
    bus = EventBus(sim)
    assert sim.trace is bus
    assert bus.attached


def test_second_bus_on_same_sim_rejected():
    sim = Simulator()
    EventBus(sim)
    with pytest.raises(ValueError):
        EventBus(sim)


def test_detach_restores_untraced_state():
    sim = Simulator()
    bus = EventBus(sim)
    bus.detach()
    assert sim.trace is None
    assert not bus.attached
    EventBus(sim)  # a fresh bus may attach again


# ------------------------------------------------------------------- emission
def test_instant_and_complete_events():
    sim = Simulator()
    bus = EventBus(sim)

    def fiber():
        bus.instant("cache", "hit", "ssd0/cache", lpn=7)
        start_ns = sim.now
        yield sim.timeout(250)
        bus.complete("nand", "read", "ssd0/ch3", start_ns, bytes=4096)

    sim.run(sim.process(fiber()))
    instant, span = bus.events
    assert instant == TraceEvent(0, None, "cache", "hit", "ssd0/cache",
                                 {"lpn": 7})
    assert instant.end_ns == 0  # instants have zero extent
    assert span.ts_ns == 0 and span.dur_ns == 250
    assert span.end_ns == 250
    assert span.args == {"bytes": 4096}


def test_next_id_is_monotonic():
    bus = EventBus(Simulator())
    first, second = bus.next_id(), bus.next_id()
    assert second == first + 1


def test_select_filters_by_cat_name_track():
    sim = Simulator()
    bus = EventBus(sim)
    bus.instant("cache", "hit", "ssd0/cache")
    bus.instant("cache", "miss", "ssd0/cache")
    bus.instant("cache", "hit", "ssd1/cache")
    assert len(bus.select(cat="cache")) == 3
    assert len(bus.select(name="hit")) == 2
    assert len(bus.select(name="hit", track="ssd0/cache")) == 1


def test_clear_resets_events_not_ids():
    bus = EventBus(Simulator())
    bus.instant("a", "b", "t")
    first = bus.next_id()
    bus.clear()
    assert len(bus) == 0
    assert bus.next_id() == first + 1  # ids never recycle


def test_register_device_assigns_sequential_scopes():
    bus = EventBus(Simulator())
    assert bus.register_device() == "ssd0"
    assert bus.register_device() == "ssd1"


# ---------------------------------------------------- disabled ⇒ zero impact
def _timing_sample(system, path="/bench/inv.dat", samples=8):
    system.fs.install_synthetic(path, 16 * MIB)
    handle = system.open_host(path)

    def program():
        total_ns = 0
        for index in range(samples):
            start_ns = system.sim.now
            yield from handle.read_timing_only(index * 4096, 4096)
            total_ns += system.sim.now - start_ns
        return total_ns

    return system.run_fiber(program())


def test_tracing_never_advances_simulated_time():
    """Golden invariance: timing is bit-identical with the bus on or off."""
    untraced = _timing_sample(System())

    sim = Simulator()
    bus = EventBus(sim)
    traced = _timing_sample(System(sim=sim))

    assert traced == untraced
    assert len(bus.events) > 0  # the traced run did actually record


def test_disabled_sites_emit_nothing(system):
    """With no bus attached every trace site is skipped outright."""
    assert system.sim.trace is None
    _timing_sample(system)
    assert system.sim.trace is None  # nothing attached one mid-run
