"""Host model: contention curve, I/O latency, platform wiring."""

import pytest

from repro.host.cpu import HostCPU
from repro.host.platform import System
from repro.sim.engine import Simulator


# --------------------------------------------------------------- contention
def test_contention_factor_at_zero_load():
    cpu = HostCPU(Simulator())
    assert cpu.contention_factor() == 1.0


@pytest.mark.parametrize("threads,expected", [
    (6, 14.8 / 12.2), (12, 16.3 / 12.2), (18, 18.8 / 12.2), (24, 19.9 / 12.2),
])
def test_contention_curve_matches_table5_fit(threads, expected):
    """The (a, b) fit reproduces the paper's Table V Conv ratios within 5%."""
    cpu = HostCPU(Simulator())
    cpu.set_background_load(threads)
    assert abs(cpu.contention_factor() - expected) / expected < 0.05


def test_contention_monotone():
    cpu = HostCPU(Simulator())
    factors = []
    for threads in (0, 4, 8, 16, 32, 64):
        cpu.set_background_load(threads)
        factors.append(cpu.contention_factor())
    assert factors == sorted(factors)
    assert factors[-1] < 3.0  # saturating, not unbounded


def test_negative_load_rejected():
    with pytest.raises(ValueError):
        HostCPU(Simulator()).set_background_load(-1)


def test_memory_bound_work_stretches_under_load():
    sim = Simulator()
    cpu = HostCPU(sim)
    sim.run(sim.process(cpu.occupy(100.0)))
    unloaded = sim.now
    cpu.set_background_load(24)
    start = sim.now
    sim.run(sim.process(cpu.occupy(100.0)))
    loaded = sim.now - start
    assert loaded > 1.5 * unloaded


def test_cache_resident_work_unaffected_by_load():
    sim = Simulator()
    cpu = HostCPU(sim)
    cpu.set_background_load(24)
    sim.run(sim.process(cpu.occupy(100.0, memory_bound=False)))
    assert sim.now == 100_000  # exactly 100 us


def test_scan_rate_matches_table5():
    sim = Simulator()
    cpu = HostCPU(sim)
    size = 68_000_000  # 1/10 of a second at 680 MB/s
    sim.run(sim.process(cpu.scan(size)))
    assert abs(sim.now_s - 0.1) < 0.001


# --------------------------------------------------------------------- I/O
def test_pread_4k_latency_is_paper_90us():
    system = System()
    system.fs.install_synthetic("/d", 1 << 20)
    handle = system.open_host("/d")
    system.run_fiber(handle.read_timing_only(0, 4096))
    assert abs(system.sim.now_us - 90.0) < 1.0  # Table III Conv


def test_pread_latency_inflates_under_load():
    baseline = System()
    baseline.fs.install_synthetic("/d", 1 << 20)
    baseline.run_fiber(baseline.open_host("/d").read_timing_only(0, 4096))

    loaded = System(background_threads=24)
    loaded.fs.install_synthetic("/d", 1 << 20)
    loaded.run_fiber(loaded.open_host("/d").read_timing_only(0, 4096))
    inflation = loaded.sim.now / baseline.sim.now
    # Table IV implies ~12% per-read inflation at 24 threads.
    assert 1.05 < inflation < 1.2


def test_internal_read_immune_to_load():
    system = System(background_threads=24)
    system.fs.install_synthetic("/d", 1 << 20)
    system.run_fiber(system.open_internal("/d").read_timing_only(0, 4096))
    assert abs(system.sim.now_us - 75.9) < 1.0


def test_apread_overlaps():
    system = System()
    system.fs.install_synthetic("/d", 64 << 20)

    def program():
        events = [system.io.apread_pages(list(range(i * 256, (i + 1) * 256)))
                  for i in range(4)]
        from repro.sim.engine import all_of
        yield all_of(system.sim, events)

    system.run_fiber(program())
    sequential_estimate = 4 * 256 * 90e-6
    assert system.sim.now_s < sequential_estimate


# ----------------------------------------------------------------- platform
def test_platform_wiring():
    system = System()
    assert system.device.sim is system.sim
    assert system.fs.device is system.device
    assert system.io.cpu is system.cpu


def test_run_fiber_returns_value():
    system = System()

    def fiber():
        yield system.sim.timeout(5)
        return "ok"

    assert system.run_fiber(fiber()) == "ok"
    assert system.now_s == 5e-9
