"""Module registry, image files, registration rules."""

import pytest

from repro.core.errors import ModuleError
from repro.core.module import (
    SSDletModule,
    module_repository,
    read_module_header,
    register_ssdlet,
    write_module_image,
)
from repro.core.ssdlet import SSDLet


class Task(SSDLet):
    def run(self):
        yield self._runtime.sim.timeout(1)


def test_register_and_lookup():
    module = SSDletModule("test-reg-%d" % id(object()))
    module.register("idTask", Task)
    assert module.lookup("idTask") is Task


def test_duplicate_registration_rejected():
    module = SSDletModule("test-dup-%d" % id(object()))
    module.register("idTask", Task)
    with pytest.raises(ModuleError):
        module.register("idTask", Task)


def test_lookup_unknown_id():
    module = SSDletModule("test-miss-%d" % id(object()))
    with pytest.raises(ModuleError):
        module.lookup("idNope")


def test_class_without_run_rejected():
    module = SSDletModule("test-norun-%d" % id(object()))

    class NoRun:
        pass

    with pytest.raises(ModuleError):
        module.register("idBad", NoRun)


def test_decorator_form():
    module = SSDletModule("test-deco-%d" % id(object()))

    @register_ssdlet(module, "idDecorated")
    class Decorated(SSDLet):
        def run(self):
            yield None

    assert module.lookup("idDecorated") is Decorated


def test_invalid_module_name():
    with pytest.raises(ModuleError):
        SSDletModule("")
    with pytest.raises(ModuleError):
        SSDletModule("two\nlines")


def test_binary_size_grows_with_classes():
    module = SSDletModule("test-size-%d" % id(object()))
    empty = module.binary_size
    module.register("idTask", Task)
    assert module.binary_size > empty


def test_explicit_binary_size():
    module = SSDletModule("test-explicit-%d" % id(object()), binary_size=12345)
    assert module.binary_size == 12345


def test_repository_registration():
    name = "test-repo-%d" % id(object())
    module = SSDletModule(name)
    assert module_repository()[name] is module


def test_image_roundtrip(system):
    name = "test-image-%d" % id(object())
    module = SSDletModule(name)
    module.register("idTask", Task)
    inode = write_module_image(system.fs, "/mod.slet", module)
    assert inode.size == module.binary_size
    header = system.fs.read_range(inode, 0, 64)
    assert read_module_header(header) == name


def test_bad_image_rejected():
    with pytest.raises(ModuleError):
        read_module_header(b"ELF\x7f not an slet")


def test_unknown_module_in_image():
    with pytest.raises(ModuleError):
        read_module_header(b"SLET1\nnever-compiled\n")
