"""Port wiring rules and latency calibration at the unit level."""

import pytest

from repro.core.errors import (
    NotSerializableError,
    PortConnectionError,
    TypeMismatchError,
)
from repro.core.ports import (
    Connection,
    DeviceInputPort,
    DeviceOutputPort,
    PortKind,
    connect_ports,
)
from repro.sim.engine import Simulator
from repro.ssd.config import SSDConfig


def make_ports(sim=None, dtype=int, kind=PortKind.INTER_SSDLET):
    sim = sim or Simulator()
    config = SSDConfig()

    def compute(duration_us):
        yield sim.timeout(round(duration_us * 1000))

    def interface(nbytes):
        yield sim.timeout(0)

    out_port = DeviceOutputPort(sim, "src", 0, dtype, compute, interface, config)
    in_port = DeviceInputPort(sim, "dst", 0, dtype, compute, config)
    connection = Connection(sim, kind, dtype)
    return sim, out_port, in_port, connection


def test_connect_and_transfer():
    sim, out_port, in_port, connection = make_ports()
    connect_ports(out_port, in_port, connection)
    received = []

    def producer():
        yield from out_port.put(7)
        out_port.close()

    def consumer():
        received.append((yield from in_port.get()))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert received == [7]
    assert connection.items_transferred == 1


def test_inter_ssdlet_roundtrip_is_31us():
    sim, out_port, in_port, connection = make_ports()
    connect_ports(out_port, in_port, connection)

    def program():
        start = sim.now
        yield from out_port.put(1)
        yield from in_port.get()
        return (sim.now - start) / 1e3

    assert abs(sim.run(sim.process(program())) - 31.0) < 0.1


def test_inter_app_roundtrip_is_schedule_latency():
    sim, out_port, in_port, connection = make_ports(kind=PortKind.INTER_APP)
    connect_ports(out_port, in_port, connection)

    def program():
        start = sim.now
        yield from out_port.put(1)
        yield from in_port.get()
        return (sim.now - start) / 1e3

    assert abs(sim.run(sim.process(program())) - 10.7) < 0.1


def test_type_mismatch_on_connect():
    sim = Simulator()
    _, out_port, _, _ = make_ports(sim, dtype=int)
    _, _, in_port, connection = make_ports(sim, dtype=str)
    with pytest.raises(TypeMismatchError):
        connect_ports(out_port, in_port, connection)


def test_put_rejects_wrong_value_type():
    sim, out_port, in_port, connection = make_ports()
    connect_ports(out_port, in_port, connection)
    proc = sim.process(out_port.put("not an int"))
    proc.defused = True
    sim.run()
    assert isinstance(proc.exception, TypeMismatchError)


def test_non_serializable_type_rejected_for_packet_ports():
    class Opaque:
        pass

    sim = Simulator()
    with pytest.raises(NotSerializableError):
        Connection(sim, PortKind.HOST_DEVICE, Opaque)
    with pytest.raises(NotSerializableError):
        Connection(sim, PortKind.INTER_APP, Opaque)
    # inter-SSDlet ports allow general types.
    Connection(sim, PortKind.INTER_SSDLET, Opaque)


def test_spsc_enforced_for_non_inter_ssdlet():
    sim = Simulator()
    connection = Connection(sim, PortKind.INTER_APP, int)
    connection.attach_producer()
    with pytest.raises(PortConnectionError):
        connection.attach_producer()
    connection.attach_consumer()
    with pytest.raises(PortConnectionError):
        connection.attach_consumer()


def test_inter_ssdlet_allows_mpsc():
    sim = Simulator()
    connection = Connection(sim, PortKind.INTER_SSDLET, int)
    connection.attach_producer()
    connection.attach_producer()
    connection.attach_consumer()
    connection.attach_consumer()


def test_endpoint_joins_one_connection_only():
    sim = Simulator()
    _, out_port, in_port, connection = make_ports(sim)
    connect_ports(out_port, in_port, connection)
    _, _, other_in, other_connection = make_ports(sim)
    with pytest.raises(PortConnectionError):
        connect_ports(out_port, other_in, other_connection)


def test_close_before_wiring_propagates():
    """A producer that finished before its link was wired still closes it."""
    sim, out_port, in_port, connection = make_ports()
    out_port.close()
    connect_ports(out_port, in_port, connection)
    from repro.core.errors import PortClosed

    def consumer():
        try:
            yield from in_port.get()
        except PortClosed:
            return "closed"

    assert sim.run(sim.process(consumer())) == "closed"


def test_queue_closes_only_when_all_producers_done():
    sim = Simulator()
    config = SSDConfig()

    def compute(duration_us):
        yield sim.timeout(0)

    def interface(nbytes):
        yield sim.timeout(0)

    connection = Connection(sim, PortKind.INTER_SSDLET, int)
    producers = [
        DeviceOutputPort(sim, "p%d" % i, 0, int, compute, interface, config)
        for i in range(2)
    ]
    consumer = DeviceInputPort(sim, "c", 0, int, compute, config)
    connect_ports(producers[0], consumer, connection)
    connect_ports(producers[1], consumer, connection)
    producers[0].close()
    assert not connection.queue.closed
    producers[1].close()
    assert connection.queue.closed


def test_get_on_unconnected_port_blocks_until_wired():
    sim, out_port, in_port, connection = make_ports()
    got = []

    def consumer():
        got.append((yield from in_port.get()))

    sim.process(consumer())
    sim.run(until=1000)
    assert got == []  # still waiting for wiring
    connect_ports(out_port, in_port, connection)
    sim.process(out_port.put(5))
    sim.run()
    assert got == [5]


def test_get_opt_and_drain():
    sim, out_port, in_port, connection = make_ports()
    connect_ports(out_port, in_port, connection)

    def program():
        for i in range(3):
            yield from out_port.put(i)
        out_port.close()
        values = yield from in_port.drain()
        empty = yield from in_port.get_opt()
        return values, empty

    values, empty = sim.run(sim.process(program()))
    assert values == [0, 1, 2]
    assert empty is None
