"""SSDLet base-class API surface."""

import pytest

from repro.core import SSD, Application, SSDLet, SSDLetProxy
from repro.core.errors import BiscuitError

from tests.core.helpers import IMAGE_PATH, deploy


@pytest.fixture
def ssd(system):
    deploy(system)
    return SSD(system)


def test_detached_ssdlet_rejects_resource_calls():
    task = SSDLet()
    with pytest.raises(BiscuitError):
        next(task.compute(1.0))
    with pytest.raises(BiscuitError):
        next(task.open("/x"))
    with pytest.raises(BiscuitError):
        task.malloc(16)


def test_run_must_be_overridden():
    class Bare(SSDLet):
        pass

    with pytest.raises(NotImplementedError):
        next(Bare().run())


def test_instance_introspection(system, ssd):
    mid = system.run_fiber(ssd.loadModule(IMAGE_PATH))

    def program():
        app = Application(ssd, "intro", verify="off")  # input deliberately unwired
        proxy = SSDLetProxy(app, mid, "idDoubler")
        yield from app.start()
        instance = proxy.instance
        shape = (instance.num_in, instance.num_out, instance.args,
                 instance.name)
        # The doubler blocks on its never-wired input; cancel it.
        app.stop()
        yield system.sim.timeout(0)
        return shape

    num_in, num_out, args, name = system.run_fiber(program())
    assert (num_in, num_out) == (1, 1)
    assert args == ()
    assert name.startswith("intro/idDoubler#")


def test_yield_is_cooperative(system, ssd):
    mid = system.run_fiber(ssd.loadModule(IMAGE_PATH))
    order = []

    def program():
        app = Application(ssd, "yields")
        proxy = SSDLetProxy(app, mid, "idAllocator")
        yield from app.start()
        instance = proxy.instance
        def poker():
            order.append("fiber-a")
            yield from instance.yield_()
            order.append("fiber-a-again")
        def other():
            order.append("fiber-b")
            yield system.sim.timeout(0)
        pa = system.sim.process(poker())
        pb = system.sim.process(other())
        yield pa
        yield pb
        yield from app.wait()

    system.run_fiber(program())
    # The explicit yield let fiber-b run between fiber-a's two steps.
    assert order == ["fiber-a", "fiber-b", "fiber-a-again"]
