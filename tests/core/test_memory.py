"""Memory allocators: first-fit arena, coalescing, ownership isolation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import MemoryQuotaError, SafetyViolation
from repro.core.memory import AllocatorSet, Arena


def test_alloc_free_basic():
    arena = Arena(1024)
    offset = arena.alloc(100)
    assert arena.used >= 100
    arena.free(offset)
    assert arena.used == 0
    assert arena.free_bytes == 1024


def test_alloc_aligned():
    arena = Arena(1024)
    a = arena.alloc(1)
    b = arena.alloc(1)
    assert a % 16 == 0 and b % 16 == 0
    assert b - a == 16


def test_exhaustion_raises():
    arena = Arena(128)
    arena.alloc(100)
    with pytest.raises(MemoryQuotaError):
        arena.alloc(100)
    assert arena.failed_allocs == 1


def test_invalid_sizes():
    arena = Arena(128)
    with pytest.raises(ValueError):
        arena.alloc(0)
    with pytest.raises(ValueError):
        Arena(0)


def test_double_free_detected():
    arena = Arena(256)
    offset = arena.alloc(16)
    arena.free(offset)
    with pytest.raises(SafetyViolation):
        arena.free(offset)


def test_free_of_unallocated_offset():
    arena = Arena(256)
    with pytest.raises(SafetyViolation):
        arena.free(64)


def test_coalescing_allows_big_alloc_after_frees():
    arena = Arena(256)
    offsets = [arena.alloc(64) for _ in range(4)]
    for offset in offsets:
        arena.free(offset)
    assert arena.largest_free_block == 256
    arena.alloc(256)  # must succeed after full coalesce


def test_fragmentation_metric():
    arena = Arena(512)
    offsets = [arena.alloc(64) for _ in range(8)]
    for offset in offsets[::2]:  # free alternating blocks
        arena.free(offset)
    assert arena.external_fragmentation() > 0.5
    for offset in offsets[1::2]:
        arena.free(offset)
    assert arena.external_fragmentation() == 0.0


def test_ownership_enforced_on_free():
    arena = Arena(256)
    offset = arena.alloc(16, owner="ssdlet-a")
    with pytest.raises(SafetyViolation):
        arena.free(offset, owner="ssdlet-b")
    assert arena.owner_of(offset) == "ssdlet-a"
    arena.free(offset, owner="ssdlet-a")


def test_free_owner_sweeps_everything():
    arena = Arena(1024)
    for _ in range(5):
        arena.alloc(32, owner="dying")
    keep = arena.alloc(32, owner="living")
    assert arena.free_owner("dying") == 5
    assert arena.owner_of(keep) == "living"


def test_peak_tracking():
    arena = Arena(1024)
    a = arena.alloc(100)
    b = arena.alloc(100)
    arena.free(a)
    arena.free(b)
    assert arena.peak_used >= 208  # two aligned 100-byte blocks


def test_allocator_set_isolation():
    allocators = AllocatorSet(1024, 1024)
    system_offset = allocators.system_alloc(64)
    user_offset = allocators.user_alloc(64, owner="inst#1")
    with pytest.raises(SafetyViolation):
        allocators.user_free(user_offset, owner="inst#2")
    with pytest.raises(SafetyViolation):
        allocators.user_alloc(16, owner="<system>")
    allocators.user_free(user_offset, owner="inst#1")
    allocators.system_free(system_offset)


def test_release_owner():
    allocators = AllocatorSet(256, 1024)
    for _ in range(3):
        allocators.user_alloc(64, owner="app/task#7")
    assert allocators.release_owner("app/task#7") == 3
    assert allocators.user.used == 0


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.one_of(
        st.tuples(st.just("alloc"), st.integers(1, 200)),
        st.tuples(st.just("free"), st.integers(0, 30)),
    ),
    max_size=80,
))
def test_property_arena_invariants(operations):
    """Random alloc/free sequences never corrupt the free list."""
    arena = Arena(4096)
    live = []
    for op, arg in operations:
        if op == "alloc":
            try:
                live.append(arena.alloc(arg))
            except MemoryQuotaError:
                pass
        elif live:
            arena.free(live.pop(arg % len(live)))
        arena.check_invariants()
    assert arena.used + arena.free_bytes <= arena.size
