"""Shared SSDlet classes for core framework tests."""

from typing import Tuple

from repro.core import Packet, SSDLet, SSDletModule, write_module_image
from repro.core.errors import PortClosed

TEST_MODULE = SSDletModule("core-test-module")
IMAGE_PATH = "/var/isc/slets/core_test.slet"


class Producer(SSDLet):
    """Emits ints 0..count-1 on out(0).  Args: (count,)."""

    OUT_TYPES = (int,)
    ARG_TYPES = (int,)

    def run(self):
        for i in range(self.arg(0)):
            yield from self.out(0).put(i)


class Consumer(SSDLet):
    """Collects everything from in_(0) into self.received."""

    IN_TYPES = (int,)

    def run(self):
        self.received = []
        while True:
            try:
                self.received.append((yield from self.in_(0).get()))
            except PortClosed:
                return


class Doubler(SSDLet):
    """int -> int pipeline stage multiplying by two."""

    IN_TYPES = (int,)
    OUT_TYPES = (int,)

    def run(self):
        while True:
            try:
                value = yield from self.in_(0).get()
            except PortClosed:
                return
            yield from self.out(0).put(value * 2)


class StrSource(SSDLet):
    """Emits one string (for type-mismatch tests)."""

    OUT_TYPES = (str,)

    def run(self):
        yield from self.out(0).put("text")


class PacketEcho(SSDLet):
    """Packet -> Packet passthrough (inter-application tests)."""

    IN_TYPES = (Packet,)
    OUT_TYPES = (Packet,)

    def run(self):
        while True:
            try:
                value = yield from self.in_(0).get()
            except PortClosed:
                return
            yield from self.out(0).put(value)


class FileReader(SSDLet):
    """Reads a granted file fully; stores bytes in self.data.  Args: (token,)."""

    def run(self):
        handle = yield from self.open(self.arg(0))
        self.data = yield from handle.read(0, handle.size)


class Allocator(SSDLet):
    """Allocates user memory and leaves it allocated (teardown test)."""

    def run(self):
        self.address = self.malloc(4096)
        yield self._runtime.sim.timeout(100_000_000)  # stay alive for 100 ms


class Crasher(SSDLet):
    """Raises mid-run after producing one value."""

    OUT_TYPES = (int,)

    def run(self):
        yield from self.out(0).put(1)
        raise RuntimeError("ssdlet crashed")


for class_id, cls in [
    ("idProducer", Producer), ("idConsumer", Consumer), ("idDoubler", Doubler),
    ("idStrSource", StrSource), ("idPacketEcho", PacketEcho),
    ("idFileReader", FileReader), ("idAllocator", Allocator),
    ("idCrasher", Crasher),
]:
    TEST_MODULE.register(class_id, cls)


def deploy(system):
    """Install the test module image; returns its path."""
    if not system.fs.exists(IMAGE_PATH):
        write_module_image(system.fs, IMAGE_PATH, TEST_MODULE)
    return IMAGE_PATH
