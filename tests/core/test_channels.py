"""Channel manager: control-call costs, data-channel pool."""

from repro.core.channels import ChannelManager
from repro.host.platform import System


def make_manager():
    system = System()
    return system, ChannelManager(system.sim, system.cpu, system.device)


def test_control_call_returns_device_work_value():
    system, manager = make_manager()

    def work():
        yield system.sim.timeout(1000)
        return "result"

    assert system.run_fiber(manager.control_call(work())) == "result"
    assert manager.control_calls == 1


def test_control_call_cost_spans_both_directions():
    system, manager = make_manager()
    system.run_fiber(manager.control_call())
    config = system.config
    minimum = (config.h2d_host_sender_us + config.h2d_interface_us
               + config.h2d_device_receiver_us + config.d2h_device_sender_us
               + config.d2h_interface_us + config.d2h_host_receiver_us)
    assert system.sim.now_us >= minimum


def test_data_channel_pool_blocks_at_capacity():
    system, manager = make_manager()
    capacity = system.config.channel_pool_size
    acquired = []

    def taker(index):
        yield from manager.acquire_data_channel()
        acquired.append(index)

    for index in range(capacity + 2):
        system.sim.process(taker(index))
    system.sim.run()
    assert len(acquired) == capacity
    manager.release_data_channel()
    manager.release_data_channel()
    system.sim.run()
    # The two waiting takers complete once slots free up.
    assert len(acquired) == capacity + 2


def test_data_channel_release_unblocks_waiters():
    system, manager = make_manager()
    capacity = system.config.channel_pool_size
    done = []

    def taker(index, hold_ns):
        yield from manager.acquire_data_channel()
        yield system.sim.timeout(hold_ns)
        manager.release_data_channel()
        done.append(index)

    for index in range(capacity + 3):
        system.sim.process(taker(index, 1000))
    system.sim.run()
    assert len(done) == capacity + 3


def test_interface_crossing_moves_bytes():
    system, manager = make_manager()
    system.run_fiber(manager.interface_crossing(4096, to_host=True))
    assert system.device.interface.bytes_to_host == 4096
    system.run_fiber(manager.interface_crossing(4096, to_host=False))
    assert system.device.interface.bytes_to_device == 4096
