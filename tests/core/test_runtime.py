"""Device runtime: module load/unload, instances, memory, file permissions."""

import pytest

from repro.core import SSD, Application, DeviceFile, SSDLetProxy
from repro.core.errors import ModuleError, SafetyViolation, TypeMismatchError
from repro.core.runtime import INSTANCE_BASE_BYTES

from tests.core.helpers import IMAGE_PATH, TEST_MODULE, deploy


@pytest.fixture
def ssd(system):
    deploy(system)
    return SSD(system)


def load(system, ssd):
    return system.run_fiber(ssd.loadModule(IMAGE_PATH))


# ------------------------------------------------------------------- modules
def test_load_module_returns_id_and_takes_time(system, ssd):
    before = system.sim.now
    mid = load(system, ssd)
    assert mid in ssd.runtime.loaded_modules
    assert system.sim.now > before


def test_load_reserves_system_memory(system, ssd):
    before = ssd.runtime.allocators.system.used
    load(system, ssd)
    assert ssd.runtime.allocators.system.used >= before + TEST_MODULE.binary_size


def test_unload_releases_memory(system, ssd):
    mid = load(system, ssd)
    used = ssd.runtime.allocators.system.used
    system.run_fiber(ssd.unloadModule(mid))
    assert mid not in ssd.runtime.loaded_modules
    assert ssd.runtime.allocators.system.used < used


def test_unload_unknown_module(system, ssd):
    with pytest.raises(ModuleError):
        system.run_fiber(ssd.unloadModule(999))


def test_load_missing_image(system, ssd):
    from repro.fs.filesystem import FsError
    with pytest.raises(FsError):
        system.run_fiber(ssd.loadModule("/no/such.slet"))


def test_load_corrupt_image(system, ssd):
    system.fs.install("/bad.slet", b"garbage" * 100)
    with pytest.raises(ModuleError):
        system.run_fiber(ssd.loadModule("/bad.slet"))


def test_module_loads_are_independent(system, ssd):
    first = load(system, ssd)
    second = load(system, ssd)
    assert first != second


def test_unload_busy_module_rejected(system, ssd):
    """A module with live instances cannot be unloaded (dynamic unloading
    is safe only when nothing runs from it)."""
    mid = load(system, ssd)

    def program():
        app = Application(ssd)
        consumer = SSDLetProxy(app, mid, "idConsumer")
        port = app.connectFrom(int, consumer.in_(0))
        yield from app.start()
        # Consumer still running (waiting on its port).
        try:
            yield from ssd.unloadModule(mid)
        except ModuleError:
            port.close()
            yield from app.wait()
            yield from ssd.unloadModule(mid)  # fine once finished
            return "rejected-then-ok"

    assert system.run_fiber(program()) == "rejected-then-ok"


# ----------------------------------------------------------------- instances
def test_instance_gets_user_memory_and_releases_on_exit(system, ssd):
    mid = load(system, ssd)
    runtime = ssd.runtime
    base = runtime.allocators.user.used

    def program():
        app = Application(ssd)
        SSDLetProxy(app, mid, "idAllocator")
        yield from app.start()
        during = runtime.allocators.user.used
        yield from app.wait()
        return during

    during = system.run_fiber(program())
    assert during >= base + INSTANCE_BASE_BYTES + 4096
    # The Allocator never freed its block; instance teardown swept it.
    assert runtime.allocators.user.used == base


def test_unknown_class_id(system, ssd):
    mid = load(system, ssd)

    def program():
        app = Application(ssd)
        try:
            SSDLetProxy(app, mid, "idMissing")
        except ModuleError:
            return "rejected"
        yield system.sim.timeout(0)

    assert system.run_fiber(program()) == "rejected"


def test_wrong_arg_count(system, ssd):
    mid = load(system, ssd)

    def program():
        app = Application(ssd, verify="off")  # deliberately dangling output
        SSDLetProxy(app, mid, "idProducer", (1, 2, 3))
        try:
            yield from app.start()
        except TypeMismatchError:
            return "rejected"

    assert system.run_fiber(program()) == "rejected"


# ----------------------------------------------------------- file permission
def test_granted_file_readable(system, ssd):
    mid = load(system, ssd)
    system.fs.install("/data/ok.bin", b"payload!")

    def program():
        app = Application(ssd)
        token = DeviceFile(ssd, "/data/ok.bin")
        reader = SSDLetProxy(app, mid, "idFileReader", (token,))
        yield from app.start()
        yield from app.wait()
        return reader.instance.data

    assert system.run_fiber(program()) == b"payload!"


def test_ungranted_file_rejected(system, ssd):
    """Permission inheritance: SSDlets may only open host-granted paths."""
    mid = load(system, ssd)
    system.fs.install("/data/secret.bin", b"secret")

    class FakeToken:
        path = "/data/secret.bin"
        use_matcher = False

    def program():
        app = Application(ssd)
        SSDLetProxy(app, mid, "idFileReader", (FakeToken(),))
        yield from app.start()
        try:
            yield from app.wait()
        except SafetyViolation:
            return "blocked"

    assert system.run_fiber(program()) == "blocked"


def test_revoked_file_rejected(system, ssd):
    mid = load(system, ssd)
    system.fs.install("/data/gone.bin", b"x")

    def program():
        app = Application(ssd)
        token = DeviceFile(ssd, "/data/gone.bin")
        SSDLetProxy(app, mid, "idFileReader", (token,))
        ssd.runtime.revoke_file("/data/gone.bin")
        yield from app.start()
        try:
            yield from app.wait()
        except SafetyViolation:
            return "blocked"

    assert system.run_fiber(program()) == "blocked"


def test_system_memory_access_is_violation(system, ssd):
    mid = load(system, ssd)

    def program():
        app = Application(ssd)
        proxy = SSDLetProxy(app, mid, "idAllocator")
        yield from app.start()
        yield from app.wait()
        try:
            proxy.instance.system_memory_access(0)
        except SafetyViolation:
            return "blocked"

    assert system.run_fiber(program()) == "blocked"


# ----------------------------------------------------------------- scheduling
def test_compute_serializes_within_application(system, ssd):
    """All fibers of one application share one core (no compute overlap)."""
    runtime = ssd.runtime
    app = runtime.register_application("affinity")

    def worker():
        yield from runtime.compute(app, 100.0)

    start = system.sim.now
    fibers = [system.sim.process(worker()) for _ in range(3)]
    from repro.sim.engine import all_of
    system.sim.run(all_of(system.sim, fibers))
    assert (system.sim.now - start) / 1e3 >= 300.0  # serialized


def test_compute_parallel_across_applications(system, ssd):
    runtime = ssd.runtime
    app_a = runtime.register_application("a")
    app_b = runtime.register_application("b")
    assert app_a.core != app_b.core

    def worker(app):
        yield from runtime.compute(app, 100.0)

    start = system.sim.now
    fibers = [system.sim.process(worker(app_a)), system.sim.process(worker(app_b))]
    from repro.sim.engine import all_of
    system.sim.run(all_of(system.sim, fibers))
    assert abs((system.sim.now - start) / 1e3 - 100.0) < 0.01  # overlapped
