"""Application lifecycle: wiring rules, start/wait, pipelines, failures."""

import pytest

from repro.core import SSD, Application, Packet, SSDLetProxy
from repro.core.errors import (
    PortClosed,
    PortConnectionError,
    TypeMismatchError,
)

from tests.core.helpers import IMAGE_PATH, deploy


@pytest.fixture
def ssd(system):
    deploy(system)
    return SSD(system)


def load(system, ssd):
    return system.run_fiber(ssd.loadModule(IMAGE_PATH))


def test_producer_to_host(system, ssd):
    mid = load(system, ssd)

    def program():
        app = Application(ssd)
        producer = SSDLetProxy(app, mid, "idProducer", (5,))
        port = app.connectTo(producer.out(0), int)
        yield from app.start()
        values = yield from port.drain()
        yield from app.wait()
        return values

    assert system.run_fiber(program()) == [0, 1, 2, 3, 4]


def test_pipeline_through_doubler(system, ssd):
    mid = load(system, ssd)

    def program():
        app = Application(ssd)
        producer = SSDLetProxy(app, mid, "idProducer", (4,))
        doubler = SSDLetProxy(app, mid, "idDoubler")
        app.connect(producer.out(0), doubler.in_(0))
        port = app.connectTo(doubler.out(0), int)
        yield from app.start()
        values = yield from port.drain()
        yield from app.wait()
        return values

    assert system.run_fiber(program()) == [0, 2, 4, 6]


def test_mpsc_fan_in(system, ssd):
    mid = load(system, ssd)

    def program():
        app = Application(ssd)
        producers = [SSDLetProxy(app, mid, "idProducer", (3,)) for _ in range(3)]
        consumer = SSDLetProxy(app, mid, "idConsumer")
        for producer in producers:
            app.connect(producer.out(0), consumer.in_(0))
        yield from app.start()
        yield from app.wait()
        return consumer.instance.received

    received = system.run_fiber(program())
    assert sorted(received) == sorted([0, 1, 2] * 3)


def test_spmc_work_sharing(system, ssd):
    mid = load(system, ssd)

    def program():
        app = Application(ssd)
        producer = SSDLetProxy(app, mid, "idProducer", (12,))
        consumers = [SSDLetProxy(app, mid, "idConsumer") for _ in range(2)]
        for consumer in consumers:
            app.connect(producer.out(0), consumer.in_(0))
        yield from app.start()
        yield from app.wait()
        return [c.instance.received for c in consumers]

    received = system.run_fiber(program())
    assert sorted(received[0] + received[1]) == list(range(12))
    assert received[0] and received[1]  # both actually participated


def test_connect_type_mismatch_rejected(system, ssd):
    mid = load(system, ssd)
    app = Application(ssd)
    source = SSDLetProxy(app, mid, "idStrSource")
    consumer = SSDLetProxy(app, mid, "idConsumer")  # int input
    with pytest.raises(TypeMismatchError):
        app.connect(source.out(0), consumer.in_(0))


def test_connect_direction_validated(system, ssd):
    mid = load(system, ssd)
    app = Application(ssd)
    a = SSDLetProxy(app, mid, "idProducer", (1,))
    b = SSDLetProxy(app, mid, "idConsumer")
    with pytest.raises(PortConnectionError):
        app.connect(b.in_(0), a.out(0))


def test_connectTo_type_must_match(system, ssd):
    mid = load(system, ssd)
    app = Application(ssd)
    producer = SSDLetProxy(app, mid, "idProducer", (1,))
    with pytest.raises(TypeMismatchError):
        app.connectTo(producer.out(0), str)


def test_bad_port_index_rejected(system, ssd):
    mid = load(system, ssd)
    app = Application(ssd)
    producer = SSDLetProxy(app, mid, "idProducer", (1,))
    consumer = SSDLetProxy(app, mid, "idConsumer")
    with pytest.raises(PortConnectionError):
        app.connect(producer.out(1), consumer.in_(0))


def test_start_twice_rejected(system, ssd):
    mid = load(system, ssd)

    def program():
        app = Application(ssd, verify="off")  # deliberately dangling output
        SSDLetProxy(app, mid, "idProducer", (0,))
        yield from app.start()
        try:
            yield from app.start()
        except PortConnectionError:
            return "rejected"

    assert system.run_fiber(program()) == "rejected"


def test_wait_before_start_rejected(system, ssd):
    load(system, ssd)
    app = Application(ssd)
    with pytest.raises(PortConnectionError):
        system.run_fiber(app.wait())


def test_add_proxy_after_start_rejected(system, ssd):
    mid = load(system, ssd)

    def program():
        app = Application(ssd, verify="off")  # deliberately dangling output
        SSDLetProxy(app, mid, "idProducer", (0,))
        yield from app.start()
        try:
            SSDLetProxy(app, mid, "idConsumer")
        except PortConnectionError:
            return "rejected"

    assert system.run_fiber(program()) == "rejected"


def test_arg_type_validation(system, ssd):
    mid = load(system, ssd)

    def program():
        app = Application(ssd, verify="off")  # deliberately dangling output
        SSDLetProxy(app, mid, "idProducer", ("not an int",))
        try:
            yield from app.start()
        except TypeMismatchError:
            return "rejected"

    assert system.run_fiber(program()) == "rejected"


def test_host_to_device_port(system, ssd):
    mid = load(system, ssd)

    def program():
        app = Application(ssd)
        consumer = SSDLetProxy(app, mid, "idConsumer")
        port = app.connectFrom(int, consumer.in_(0))
        yield from app.start()
        for i in range(3):
            yield from port.put(i)
        port.close()
        yield from app.wait()
        return consumer.instance.received

    assert system.run_fiber(program()) == [0, 1, 2]


def test_inter_application_pipeline(system, ssd):
    mid = load(system, ssd)

    def real_program():
        app1 = Application(ssd, "producer-app")
        echo_app = Application(ssd, "echo-app")
        echo = SSDLetProxy(echo_app, mid, "idPacketEcho")
        feed = echo_app.connectFrom(Packet, echo.in_(0))
        out = echo_app.connectTo(echo.out(0), Packet)
        yield from echo_app.start()
        yield from feed.put(Packet(b"ping"))
        feed.close()
        result = yield from out.get()
        yield from echo_app.wait()
        return result

    assert system.run_fiber(real_program()) == Packet(b"ping")


def test_cross_application_device_link(system, ssd):
    """SSDlets of two applications linked by an inter-application port."""
    mid = load(system, ssd)

    def program():
        app1 = Application(ssd, "a1")
        app2 = Application(ssd, "a2")
        producer = SSDLetProxy(app1, mid, "idProducer", (4,))
        consumer = SSDLetProxy(app2, mid, "idConsumer")
        # int link across applications (serializable type is allowed).
        app1.connect(producer.out(0), consumer.in_(0))
        yield from app1.start()
        yield from app2.start()
        yield from app1.wait()
        yield from app2.wait()
        return consumer.instance.received

    assert system.run_fiber(program()) == [0, 1, 2, 3]


def test_ssdlet_failure_propagates_to_wait(system, ssd):
    mid = load(system, ssd)

    def program():
        app = Application(ssd)
        crasher = SSDLetProxy(app, mid, "idCrasher")
        port = app.connectTo(crasher.out(0), int)
        yield from app.start()
        values = yield from port.drain()
        try:
            yield from app.wait()
        except RuntimeError as exc:
            return values, str(exc)

    values, message = system.run_fiber(program())
    assert values == [1]
    assert message == "ssdlet crashed"


def test_applications_round_robin_cores(system, ssd):
    load(system, ssd)
    apps = [Application(ssd) for _ in range(4)]
    cores = [app.device_app.core for app in apps]
    assert cores == [0, 1, 0, 1]
