"""Typed data model: Packet, serialization, strict type checking."""

from typing import Dict, List, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import NotSerializableError, TypeMismatchError
from repro.core.types import (
    Packet,
    check_value,
    deserialize,
    is_serializable,
    packet_size_of,
    register_serializer,
    serialize,
    specs_match,
)


# -------------------------------------------------------------------- Packet
def test_packet_wraps_bytes():
    packet = Packet(b"abc")
    assert len(packet) == 3
    assert packet == Packet(b"abc")
    assert packet != Packet(b"abd")
    assert hash(packet) == hash(Packet(b"abc"))


def test_packet_rejects_non_bytes():
    with pytest.raises(TypeMismatchError):
        Packet("text")


def test_packet_serializes_to_itself():
    packet = Packet(b"payload")
    assert serialize(packet, Packet) is packet
    assert deserialize(packet, Packet) is packet


# ------------------------------------------------------------- serialization
@pytest.mark.parametrize("value,spec", [
    (42, int), (3.5, float), ("héllo", str), (b"\x00\xff", bytes), (True, bool),
    ((1, "a"), Tuple[int, str]),
    ([1, 2, 3], List[int]),
    ({"k": 2}, Dict[str, int]),
])
def test_roundtrip_builtin_types(value, spec):
    assert is_serializable(spec)
    assert deserialize(serialize(value, spec), spec) == value


def test_unregistered_class_not_serializable():
    class Custom:
        pass

    assert not is_serializable(Custom)
    with pytest.raises(NotSerializableError):
        serialize(Custom(), Custom)


def test_register_custom_serializer():
    class Point:
        def __init__(self, x, y):
            self.x, self.y = x, y

        def __eq__(self, other):
            return (self.x, self.y) == (other.x, other.y)

    register_serializer(
        Point,
        lambda p: Packet(("%d,%d" % (p.x, p.y)).encode()),
        lambda pkt: Point(*map(int, pkt.payload.decode().split(","))),
    )
    assert is_serializable(Point)
    assert deserialize(serialize(Point(3, 4), Point), Point) == Point(3, 4)


def test_packet_size_of():
    assert packet_size_of(Packet(b"12345"), Packet) == 5
    assert packet_size_of("x", str) > 0


# ------------------------------------------------------------- type checking
def test_exact_type_required():
    check_value(5, int)
    with pytest.raises(TypeMismatchError):
        check_value("5", int)


def test_no_implicit_int_to_float():
    """The paper: implicit conversion is not allowed."""
    with pytest.raises(TypeMismatchError):
        check_value(5, float)


def test_bool_is_not_int():
    with pytest.raises(TypeMismatchError):
        check_value(True, int)


def test_tuple_arity_and_elements():
    check_value(("a", 1), Tuple[str, int])
    with pytest.raises(TypeMismatchError):
        check_value(("a",), Tuple[str, int])
    with pytest.raises(TypeMismatchError):
        check_value((1, "a"), Tuple[str, int])


def test_list_and_dict_specs():
    check_value([1, 2], List[int])
    check_value({}, Dict[str, int])
    with pytest.raises(TypeMismatchError):
        check_value("not a list", List[int])


def test_specs_match_is_strict_equality():
    assert specs_match(Tuple[str, int], Tuple[str, int])
    assert not specs_match(Tuple[str, int], Tuple[int, str])
    assert not specs_match(int, float)


@settings(max_examples=50, deadline=None)
@given(st.recursive(
    st.one_of(st.integers(), st.text(), st.binary(max_size=64),
              st.floats(allow_nan=False)),
    lambda children: st.lists(children, max_size=4) | st.tuples(children),
    max_leaves=10,
))
def test_property_pickle_roundtrip_values(value):
    """Any nested builtin value survives the Packet wire format."""
    spec = type(value)
    if not is_serializable(spec):
        return
    assert deserialize(serialize(value, spec), spec) == value
