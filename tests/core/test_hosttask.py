"""Host-side tasks: the uniform task model across host and device."""

from typing import Tuple

import pytest

from repro.core import SSD, Application, HostTask, HostTaskProxy, SSDLetProxy
from repro.core.errors import PortClosed, TypeMismatchError
from repro.core.ports import PortKind

from tests.core.helpers import IMAGE_PATH, deploy


@pytest.fixture
def ssd(system):
    deploy(system)
    return SSD(system)


def load(system, ssd):
    return system.run_fiber(ssd.loadModule(IMAGE_PATH))


class HostSum(HostTask):
    """Sums its int input stream."""

    IN_TYPES = (int,)

    def run(self):
        self.total = 0
        while True:
            try:
                self.total += yield from self.in_(0).get()
            except PortClosed:
                return


class HostEmitter(HostTask):
    """Emits 0..count-1.  Args: (count,)."""

    OUT_TYPES = (int,)
    ARG_TYPES = (int,)

    def run(self):
        for value in range(self.arg(0)):
            yield from self.out(0).put(value)


class HostDoubler(HostTask):
    IN_TYPES = (int,)
    OUT_TYPES = (int,)

    def run(self):
        while True:
            try:
                value = yield from self.in_(0).get()
            except PortClosed:
                return
            yield from self.compute(1.0)
            yield from self.out(0).put(value * 2)


def test_device_to_host_task(system, ssd):
    """An SSDlet output feeds a HostTask input over a host-device port."""
    mid = load(system, ssd)

    def program():
        app = Application(ssd)
        producer = SSDLetProxy(app, mid, "idProducer", (5,))
        summer = HostTaskProxy(app, HostSum)
        app.connect(producer.out(0), summer.in_(0))
        yield from app.start()
        yield from app.wait()
        return summer.instance.total

    assert system.run_fiber(program()) == 0 + 1 + 2 + 3 + 4


def test_host_task_to_device(system, ssd):
    mid = load(system, ssd)

    def program():
        app = Application(ssd)
        emitter = HostTaskProxy(app, HostEmitter, (4,))
        consumer = SSDLetProxy(app, mid, "idConsumer")
        app.connect(emitter.out(0), consumer.in_(0))
        yield from app.start()
        yield from app.wait()
        return consumer.instance.received

    assert system.run_fiber(program()) == [0, 1, 2, 3]


def test_host_local_pipeline(system, ssd):
    load(system, ssd)

    def program():
        app = Application(ssd)
        emitter = HostTaskProxy(app, HostEmitter, (3,))
        doubler = HostTaskProxy(app, HostDoubler)
        summer = HostTaskProxy(app, HostSum)
        app.connect(emitter.out(0), doubler.in_(0))
        app.connect(doubler.out(0), summer.in_(0))
        yield from app.start()
        yield from app.wait()
        return summer.instance.total

    assert system.run_fiber(program()) == (0 + 1 + 2) * 2


def test_hybrid_three_stage_pipeline(system, ssd):
    """Device producer -> device doubler -> host sum: uniform wiring."""
    mid = load(system, ssd)

    def program():
        app = Application(ssd)
        producer = SSDLetProxy(app, mid, "idProducer", (4,))
        doubler = SSDLetProxy(app, mid, "idDoubler")
        summer = HostTaskProxy(app, HostSum)
        app.connect(producer.out(0), doubler.in_(0))
        app.connect(doubler.out(0), summer.in_(0))
        yield from app.start()
        yield from app.wait()
        return summer.instance.total

    assert system.run_fiber(program()) == (0 + 1 + 2 + 3) * 2


def test_link_kind_inference(system, ssd):
    mid = load(system, ssd)

    def program():
        app = Application(ssd)
        producer = SSDLetProxy(app, mid, "idProducer", (1,))
        emitter = HostTaskProxy(app, HostEmitter, (1,))
        device_sink = SSDLetProxy(app, mid, "idConsumer")
        host_sink = HostTaskProxy(app, HostSum)
        app.connect(producer.out(0), host_sink.in_(0))
        app.connect(emitter.out(0), device_sink.in_(0))
        yield from app.start()
        yield from app.wait()
        return (
            producer.instance.out(0).connection.kind,
            emitter.instance.out(0).connection.kind,
        )

    d2h_kind, h2d_kind = system.run_fiber(program())
    assert d2h_kind is PortKind.HOST_DEVICE
    assert h2d_kind is PortKind.HOST_DEVICE


def test_host_local_kind(system, ssd):
    load(system, ssd)

    def program():
        app = Application(ssd)
        emitter = HostTaskProxy(app, HostEmitter, (1,))
        summer = HostTaskProxy(app, HostSum)
        app.connect(emitter.out(0), summer.in_(0))
        yield from app.start()
        yield from app.wait()
        return emitter.instance.out(0).connection.kind

    assert system.run_fiber(program()) is PortKind.HOST_LOCAL


def test_host_device_link_takes_a_data_channel(system, ssd):
    mid = load(system, ssd)

    def program():
        app = Application(ssd)
        producer = SSDLetProxy(app, mid, "idProducer", (1,))
        summer = HostTaskProxy(app, HostSum)
        app.connect(producer.out(0), summer.in_(0))
        before = ssd.channels.data_channels.in_use
        yield from app.start()
        during = ssd.channels.data_channels.in_use
        yield from app.wait()
        app.stop()
        return before, during, ssd.channels.data_channels.in_use

    before, during, after = system.run_fiber(program())
    assert before == 0 and during == 1 and after == 0


def test_host_task_type_checked(system, ssd):
    load(system, ssd)
    app = Application(ssd)
    with pytest.raises(TypeMismatchError):
        HostTaskProxy(app, str)  # not a HostTask


def test_host_task_arg_validation(system, ssd):
    load(system, ssd)

    def program():
        app = Application(ssd, verify="off")  # deliberately dangling output
        HostTaskProxy(app, HostEmitter, ("three",))
        try:
            yield from app.start()
        except TypeMismatchError:
            return "rejected"

    assert system.run_fiber(program()) == "rejected"


def test_host_task_type_mismatch_on_connect(system, ssd):
    mid = load(system, ssd)
    app = Application(ssd)
    source = SSDLetProxy(app, mid, "idStrSource")
    summer = HostTaskProxy(app, HostSum)  # int input
    with pytest.raises(TypeMismatchError):
        app.connect(source.out(0), summer.in_(0))


def test_host_task_reads_files_host_side(system, ssd):
    load(system, ssd)
    system.fs.install("/data/h.bin", b"host bytes")

    class Reader(HostTask):
        def run(self):
            handle = self.open("/data/h.bin")
            self.data = yield from handle.read(0, handle.size)

    def program():
        app = Application(ssd)
        reader = HostTaskProxy(app, Reader)
        yield from app.start()
        yield from app.wait()
        return reader.instance.data

    assert system.run_fiber(program()) == b"host bytes"


def test_host_local_latency_far_below_host_device(system, ssd):
    """The same pipeline is much cheaper when both ends live on the host."""
    mid = load(system, ssd)

    def run_pipeline(local):
        def program():
            app = Application(ssd)
            if local:
                emitter = HostTaskProxy(app, HostEmitter, (50,))
            else:
                emitter = SSDLetProxy(app, mid, "idProducer", (50,))
            summer = HostTaskProxy(app, HostSum)
            app.connect(emitter.out(0), summer.in_(0))
            start = system.sim.now
            yield from app.start()
            yield from app.wait()
            return system.sim.now - start

        return system.run_fiber(program())

    assert run_pipeline(local=True) < run_pipeline(local=False)
