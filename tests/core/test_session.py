"""Multi-user sessions: file isolation and memory quotas (Section VIII)."""

import pytest

from repro.core import SSD, SSDLetProxy
from repro.core.errors import BiscuitError, MemoryQuotaError, ModuleError, SafetyViolation
from repro.core.runtime import INSTANCE_BASE_BYTES
from repro.sim.units import MIB

from tests.core.helpers import IMAGE_PATH, deploy


@pytest.fixture
def ssd(system):
    deploy(system)
    return SSD(system)


def load(system, ssd):
    return system.run_fiber(ssd.loadModule(IMAGE_PATH))


def test_session_creation(system, ssd):
    session = ssd.create_session("alice", memory_quota=4 * MIB)
    assert session.user == "alice"
    assert session.memory_available == 4 * MIB


def test_duplicate_session_rejected(system, ssd):
    ssd.create_session("bob")
    with pytest.raises(ModuleError):
        ssd.create_session("bob")


def test_invalid_session_params(system, ssd):
    with pytest.raises(BiscuitError):
        ssd.create_session("")
    with pytest.raises(BiscuitError):
        ssd.create_session("zero", memory_quota=0)


def test_session_file_readable_within_session(system, ssd):
    mid = load(system, ssd)
    system.fs.install("/data/alice.bin", b"alice-data")
    alice = ssd.create_session("alice")

    def program():
        app = alice.application("reader")
        token = alice.file("/data/alice.bin")
        reader = SSDLetProxy(app, mid, "idFileReader", (token,))
        yield from app.start()
        yield from app.wait()
        return reader.instance.data

    assert system.run_fiber(program()) == b"alice-data"


def test_session_file_blocked_in_other_session(system, ssd):
    """Cross-user token use is the integrity violation Section II-B forbids."""
    mid = load(system, ssd)
    system.fs.install("/data/alice.bin", b"alice-data")
    alice = ssd.create_session("alice")
    mallory = ssd.create_session("mallory")
    token = alice.file("/data/alice.bin")

    def program():
        app = mallory.application("thief")
        SSDLetProxy(app, mid, "idFileReader", (token,))
        yield from app.start()
        try:
            yield from app.wait()
        except SafetyViolation:
            return "blocked"

    assert system.run_fiber(program()) == "blocked"


def test_session_token_blocked_outside_any_session(system, ssd):
    mid = load(system, ssd)
    system.fs.install("/data/alice.bin", b"alice-data")
    alice = ssd.create_session("alice")
    token = alice.file("/data/alice.bin")

    from repro.core import Application

    def program():
        app = Application(ssd)  # session-less application
        SSDLetProxy(app, mid, "idFileReader", (token,))
        yield from app.start()
        try:
            yield from app.wait()
        except SafetyViolation:
            return "blocked"

    assert system.run_fiber(program()) == "blocked"


def test_global_grant_visible_inside_sessions(system, ssd):
    mid = load(system, ssd)
    system.fs.install("/data/shared.bin", b"shared")
    shared = ssd.file("/data/shared.bin")  # SSD-level grant
    alice = ssd.create_session("alice")

    def program():
        app = alice.application()
        reader = SSDLetProxy(app, mid, "idFileReader", (shared,))
        yield from app.start()
        yield from app.wait()
        return reader.instance.data

    assert system.run_fiber(program()) == b"shared"


def test_revoked_session_file_blocked(system, ssd):
    mid = load(system, ssd)
    system.fs.install("/data/a.bin", b"a")
    alice = ssd.create_session("alice")
    token = alice.file("/data/a.bin")
    alice.revoke("/data/a.bin")

    def program():
        app = alice.application()
        SSDLetProxy(app, mid, "idFileReader", (token,))
        yield from app.start()
        try:
            yield from app.wait()
        except SafetyViolation:
            return "blocked"

    assert system.run_fiber(program()) == "blocked"


def test_instance_base_counts_against_quota(system, ssd):
    mid = load(system, ssd)
    alice = ssd.create_session("alice", memory_quota=2 * MIB)

    def program():
        app = alice.application()
        SSDLetProxy(app, mid, "idAllocator")
        yield from app.start()
        used_during = alice.memory_used
        yield from app.wait()
        return used_during

    used = system.run_fiber(program())
    assert used >= INSTANCE_BASE_BYTES + 4096
    assert alice.memory_used == 0  # refunded on teardown


def test_quota_exceeded_raises(system, ssd):
    mid = load(system, ssd)
    # Quota fits the address-space floor but not the 4 KiB malloc.
    tight = ssd.create_session("tight", memory_quota=INSTANCE_BASE_BYTES + 1024)

    def program():
        app = tight.application()
        SSDLetProxy(app, mid, "idAllocator")
        yield from app.start()
        try:
            yield from app.wait()
        except MemoryQuotaError:
            return "quota"

    assert system.run_fiber(program()) == "quota"


def test_sessions_do_not_share_quota(system, ssd):
    mid = load(system, ssd)
    alice = ssd.create_session("alice", memory_quota=1 * MIB)
    bob = ssd.create_session("bob", memory_quota=1 * MIB)

    def program():
        apps = []
        for session in (alice, bob):
            app = session.application()
            SSDLetProxy(app, mid, "idAllocator")
            apps.append(app)
        for app in apps:
            yield from app.start()
        snapshot = (alice.memory_used, bob.memory_used)
        for app in apps:
            yield from app.wait()
        return snapshot

    alice_used, bob_used = system.run_fiber(program())
    assert alice_used > 0 and bob_used > 0
    assert alice_used <= 1 * MIB and bob_used <= 1 * MIB
